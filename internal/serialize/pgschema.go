// Package serialize exports a discovered schema in the two formats of
// §4.5: a PG-Schema graph type declaration (in LOOSE and STRICT
// flavours, following Angles et al., "PG-Schema: Schemas for Property
// Graphs") and an XML Schema (XSD) document for integration with
// external tools.
package serialize

import (
	"fmt"
	"sort"
	"strings"

	"github.com/pghive/pghive/internal/schema"
)

// Mode selects the PG-Schema strictness flavour (§3 "Schema
// constraint level"): STRICT enforces data types and mandatory
// properties, LOOSE permits deviation for noisy data.
type Mode uint8

const (
	// Loose emits a LOOSE graph type: labels and property names only,
	// all content open.
	Loose Mode = iota
	// Strict emits a STRICT graph type: data types, OPTIONAL markers
	// and cardinality comments included.
	Strict
)

// String returns the PG-Schema keyword for the mode.
func (m Mode) String() string {
	if m == Strict {
		return "STRICT"
	}
	return "LOOSE"
}

// PGSchema renders the schema as a PG-Schema CREATE GRAPH TYPE
// declaration. Type names are derived from label tokens (ABSTRACT_<n>
// for abstract types); edge types with several observed endpoint
// pairs emit one connection pattern per pair.
func PGSchema(s *schema.Schema, mode Mode, graphName string) string {
	if graphName == "" {
		graphName = "DiscoveredGraphType"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "CREATE GRAPH TYPE %s %s {\n", ident(graphName), mode)

	var lines []string
	for _, nt := range s.NodeTypes {
		lines = append(lines, nodeTypeDecl(nt, mode))
	}
	for _, et := range s.EdgeTypes {
		lines = append(lines, edgeTypeDecls(et, mode)...)
	}
	b.WriteString(strings.Join(lines, ",\n"))
	if len(lines) > 0 {
		b.WriteString("\n")
	}
	b.WriteString("}\n")
	return b.String()
}

func nodeTypeDecl(nt *schema.NodeType, mode Mode) string {
	var b strings.Builder
	b.WriteString("  (")
	b.WriteString(typeName(&nt.Type))
	b.WriteString(" : ")
	if nt.Abstract {
		b.WriteString("ABSTRACT")
	} else {
		b.WriteString(strings.Join(labelIdents(nt.SortedLabels()), " & "))
	}
	b.WriteString(propsBlock(&nt.Type, mode))
	b.WriteString(")")
	return b.String()
}

func edgeTypeDecls(et *schema.EdgeType, mode Mode) []string {
	srcs := et.SortedSrcTokens()
	dsts := et.SortedDstTokens()
	if len(srcs) == 0 {
		srcs = []string{""}
	}
	if len(dsts) == 0 {
		dsts = []string{""}
	}
	label := "ABSTRACT"
	if !et.Abstract {
		label = strings.Join(labelIdents(et.SortedLabels()), " & ")
	}
	var out []string
	for _, src := range srcs {
		for _, dst := range dsts {
			var b strings.Builder
			b.WriteString("  (: ")
			b.WriteString(endpointName(src))
			b.WriteString(")-[")
			b.WriteString(typeName(&et.Type))
			b.WriteString(" : ")
			b.WriteString(label)
			b.WriteString(propsBlock(&et.Type, mode))
			b.WriteString("]->(: ")
			b.WriteString(endpointName(dst))
			b.WriteString(")")
			if mode == Strict && et.Cardinality != schema.CardUnknown {
				fmt.Fprintf(&b, " /* cardinality %s */", et.Cardinality)
			}
			out = append(out, b.String())
		}
	}
	return out
}

// propsBlock renders the property list. STRICT includes data types
// and OPTIONAL markers (§4.5); LOOSE lists names under OPEN content.
func propsBlock(t *schema.Type, mode Mode) string {
	keys := t.PropertyKeys()
	if len(keys) == 0 {
		if mode == Loose {
			return " { OPEN }"
		}
		return ""
	}
	parts := make([]string, 0, len(keys)+1)
	for _, k := range keys {
		ps := t.Props[k]
		switch mode {
		case Strict:
			decl := fmt.Sprintf("%s %s", ident(k), ps.DataType)
			switch {
			case len(ps.Enum) > 0:
				decl += " /* enum: " + strings.Join(ps.Enum, " | ") + " */"
			case ps.HasIntRange:
				decl += fmt.Sprintf(" /* range: [%d, %d] */", ps.MinInt, ps.MaxInt)
			}
			if !ps.Mandatory {
				decl = "OPTIONAL " + decl
			}
			parts = append(parts, decl)
		default:
			parts = append(parts, ident(k))
		}
	}
	if mode == Loose {
		parts = append(parts, "OPEN")
	}
	return " { " + strings.Join(parts, ", ") + " }"
}

// typeName derives the declared type-variable name from a type:
// lowerCamel of the token plus "Type" (e.g. WORKS_AT → worksAtType,
// Person&Student → personStudentType), or abstract<id>Type.
func typeName(t *schema.Type) string {
	if t.Abstract || t.Token == "" {
		return fmt.Sprintf("abstract%dType", t.ID)
	}
	return camel(t.Token) + "Type"
}

// endpointName names an endpoint reference from a label token; the
// empty token (unresolved endpoint) renders as the open pattern.
func endpointName(token string) string {
	if token == "" {
		return ""
	}
	return camel(token) + "Type"
}

// camel folds a label token into lowerCamelCase on non-alphanumeric
// boundaries, lowering runs of capitals (WORKS_AT → worksAt).
func camel(s string) string {
	var b strings.Builder
	newWord := false
	first := true
	prevUpper := false
	for _, r := range s {
		isAlnum := r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9'
		if !isAlnum {
			newWord = !first
			continue
		}
		upper := r >= 'A' && r <= 'Z'
		switch {
		case first:
			if upper {
				r += 'a' - 'A'
			}
			first = false
		case newWord:
			if !upper && r >= 'a' && r <= 'z' {
				r -= 'a' - 'A'
			}
			newWord = false
		case upper && prevUpper:
			// Run of capitals (WORKS): lower the tail.
			r += 'a' - 'A'
		}
		prevUpper = upper
		b.WriteRune(r)
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

func labelIdents(labels []string) []string {
	out := make([]string, len(labels))
	for i, l := range labels {
		out[i] = ident(l)
	}
	return out
}

// ident sanitizes a label or key into a PG-Schema identifier:
// alphanumerics and underscores, with every other rune folded to '_'.
func ident(s string) string {
	if s == "" {
		return "_"
	}
	var b strings.Builder
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// SortedTypeNames returns every declared type name, sorted — a
// convenience for tests and tools that diff schema outputs.
func SortedTypeNames(s *schema.Schema) []string {
	var names []string
	for _, nt := range s.NodeTypes {
		names = append(names, typeName(&nt.Type))
	}
	for _, et := range s.EdgeTypes {
		names = append(names, typeName(&et.Type))
	}
	sort.Strings(names)
	return names
}
