package serialize

import (
	"encoding/xml"
	"strings"
	"testing"

	"github.com/pghive/pghive/internal/infer"
	"github.com/pghive/pghive/internal/pg"
	"github.com/pghive/pghive/internal/schema"
)

// figure1Schema builds the worked example of the paper: Person, Org.,
// Post, Place node types; WORKS_AT and KNOWS edge types; plus one
// abstract node type.
func figure1Schema(t *testing.T) *schema.Schema {
	t.Helper()
	s := schema.New()
	nodes := []pg.Node{
		{ID: 0, Labels: []string{"Person"}, Props: map[string]pg.Value{
			"name": pg.Str("Bob"), "gender": pg.Str("male"),
			"bday": pg.ParseLexical("1980-05-02")}},
		{ID: 1, Labels: []string{"Person"}, Props: map[string]pg.Value{
			"name": pg.Str("John"), "gender": pg.Str("male"),
			"bday": pg.ParseLexical("2005-09-24")}},
		{ID: 2, Labels: []string{"Org."}, Props: map[string]pg.Value{
			"name": pg.Str("Example"), "url": pg.Str("example.com")}},
		{ID: 3, Labels: nil, Props: map[string]pg.Value{"mystery": pg.Int(1)}},
	}
	cands := schema.BuildNodeCandidates(nodes, []int{0, 0, 1, 2}, 3)
	s.ExtractNodeTypes(cands, 0.9)

	edges := []pg.Edge{
		{ID: 0, Labels: []string{"WORKS_AT"}, Src: 0, Dst: 2,
			Props: map[string]pg.Value{"from": pg.Int(2000)}},
		{ID: 1, Labels: []string{"WORKS_AT"}, Src: 1, Dst: 2, Props: map[string]pg.Value{"from": pg.Int(2001)}},
		{ID: 2, Labels: []string{"KNOWS"}, Src: 0, Dst: 1, Props: nil},
	}
	ecands := schema.BuildEdgeCandidates(edges, []int{0, 0, 1}, 2,
		[]string{"Person", "Person", "Person"}, []string{"Org.", "Org.", "Person"})
	s.ExtractEdgeTypes(ecands, 0.9)
	infer.Finalize(s, infer.Options{})
	return s
}

func TestPGSchemaStrict(t *testing.T) {
	s := figure1Schema(t)
	out := PGSchema(s, Strict, "Fig1")
	for _, want := range []string{
		"CREATE GRAPH TYPE Fig1 STRICT {",
		"(personType : Person { bday DATE, gender STRING, name STRING })",
		"(orgType : Org_ { name STRING, url STRING })",
		"[worksAtType : WORKS_AT { from INT /* range: [2000, 2001] */ }]",
		"(: personType)-[worksAtType",
		"]->(: orgType)",
		"/* cardinality N:1 */",
		"mystery INT",
		"ABSTRACT",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("STRICT output missing %q:\n%s", want, out)
		}
	}
}

func TestPGSchemaStrictOptionalMarker(t *testing.T) {
	s := schema.New()
	nodes := []pg.Node{
		{ID: 0, Labels: []string{"Post"}, Props: map[string]pg.Value{"imgFile": pg.Str("a.png")}},
		{ID: 1, Labels: []string{"Post"}, Props: map[string]pg.Value{"content": pg.Str("hi")}},
	}
	cands := schema.BuildNodeCandidates(nodes, []int{0, 1}, 2)
	s.ExtractNodeTypes(cands, 0.9)
	infer.Finalize(s, infer.Options{})
	out := PGSchema(s, Strict, "")
	if !strings.Contains(out, "OPTIONAL content STRING") || !strings.Contains(out, "OPTIONAL imgFile STRING") {
		t.Errorf("both Post properties are optional (Example 6); got:\n%s", out)
	}
}

func TestPGSchemaLoose(t *testing.T) {
	s := figure1Schema(t)
	out := PGSchema(s, Loose, "Fig1")
	if !strings.Contains(out, "CREATE GRAPH TYPE Fig1 LOOSE {") {
		t.Errorf("missing LOOSE header:\n%s", out)
	}
	if strings.Contains(out, "STRING") || strings.Contains(out, "OPTIONAL") {
		t.Errorf("LOOSE output must not constrain types:\n%s", out)
	}
	if !strings.Contains(out, "OPEN") {
		t.Errorf("LOOSE output should mark content OPEN:\n%s", out)
	}
}

func TestPGSchemaDeterministic(t *testing.T) {
	s := figure1Schema(t)
	if PGSchema(s, Strict, "X") != PGSchema(s, Strict, "X") {
		t.Fatal("serialization must be deterministic")
	}
}

func TestXSDWellFormed(t *testing.T) {
	s := figure1Schema(t)
	out := XSD(s)
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("XSD is not well-formed XML: %v\n%s", err, out)
		}
	}
	for _, want := range []string{
		`<xs:complexType name="personType">`,
		`<xs:element name="bday" type="xs:date"/>`,
		`<xs:element name="name" type="xs:string"/>`,
		`use="required"`,
		`cardinality: N:1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("XSD missing %q", want)
		}
	}
}

func TestXSDOptionalMinOccurs(t *testing.T) {
	s := schema.New()
	nodes := []pg.Node{
		{ID: 0, Labels: []string{"T"}, Props: map[string]pg.Value{"a": pg.Int(1), "b": pg.Int(2)}},
		{ID: 1, Labels: []string{"T"}, Props: map[string]pg.Value{"a": pg.Int(3)}},
	}
	cands := schema.BuildNodeCandidates(nodes, []int{0, 0}, 1)
	s.ExtractNodeTypes(cands, 0.9)
	infer.Finalize(s, infer.Options{})
	out := XSD(s)
	// Integer properties render as range-restricted simple types; the
	// mandatory one must not carry minOccurs, the optional one must.
	if !strings.Contains(out, `<xs:element name="a">`) {
		t.Errorf("mandatory property must not carry minOccurs: %s", out)
	}
	if !strings.Contains(out, `<xs:element name="b" minOccurs="0">`) {
		t.Errorf("optional property must carry minOccurs=0: %s", out)
	}
	if !strings.Contains(out, `<xs:minInclusive value="1"/>`) || !strings.Contains(out, `<xs:maxInclusive value="3"/>`) {
		t.Errorf("integer range restriction missing: %s", out)
	}
}

func TestXSDEnumRestriction(t *testing.T) {
	s := schema.New()
	nodes := make([]pg.Node, 12)
	for i := range nodes {
		status := []string{"open", "closed", "pending"}[i%3]
		nodes[i] = pg.Node{ID: pg.ID(i), Labels: []string{"Case"},
			Props: map[string]pg.Value{"status": pg.Str(status)}}
	}
	assign := make([]int, len(nodes))
	cands := schema.BuildNodeCandidates(nodes, assign, 1)
	s.ExtractNodeTypes(cands, 0.9)
	infer.Finalize(s, infer.Options{})
	out := XSD(s)
	for _, v := range []string{"open", "closed", "pending"} {
		if !strings.Contains(out, `<xs:enumeration value="`+v+`"/>`) {
			t.Errorf("enum value %q missing from XSD:\n%s", v, out)
		}
	}
	strict := PGSchema(s, Strict, "")
	if !strings.Contains(strict, "/* enum: closed | open | pending */") {
		t.Errorf("enum annotation missing from STRICT PG-Schema:\n%s", strict)
	}
}

func TestIdent(t *testing.T) {
	cases := map[string]string{
		"Person":   "Person",
		"Org.":     "Org_",
		"has name": "has_name",
		"":         "_",
		"9lives":   "_9lives",
		"a&b":      "a_b",
	}
	for in, want := range cases {
		if got := ident(in); got != want {
			t.Errorf("ident(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestXSDTypeMapping(t *testing.T) {
	cases := map[pg.Kind]string{
		pg.KindInt: "xs:long", pg.KindFloat: "xs:double",
		pg.KindBool: "xs:boolean", pg.KindDate: "xs:date",
		pg.KindDateTime: "xs:dateTime", pg.KindString: "xs:string",
		pg.KindInvalid: "xs:string",
	}
	for k, want := range cases {
		if got := xsdType(k); got != want {
			t.Errorf("xsdType(%v) = %q, want %q", k, got, want)
		}
	}
}

func TestSortedTypeNames(t *testing.T) {
	s := figure1Schema(t)
	names := SortedTypeNames(s)
	if len(names) != 5 {
		t.Fatalf("type names = %v, want 5 entries", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatal("names must be sorted")
		}
	}
}

func TestEmptySchemaSerializes(t *testing.T) {
	s := schema.New()
	if out := PGSchema(s, Strict, ""); !strings.Contains(out, "CREATE GRAPH TYPE DiscoveredGraphType STRICT {") {
		t.Errorf("empty schema header wrong:\n%s", out)
	}
	out := XSD(s)
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		if _, err := dec.Token(); err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("empty XSD not well-formed: %v", err)
		}
	}
}
