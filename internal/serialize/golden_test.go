package serialize

// Golden-file snapshot tests for every serving format: the rendered
// output of a feature-complete fixture schema is compared byte for
// byte against checked-in files under testdata/, so any formatting
// regression in a served format shows up as a readable diff instead
// of slipping past hand-written substring asserts. Regenerate after
// an intentional change with:
//
//	go test ./internal/serialize -run Golden -update

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/pghive/pghive/internal/pg"
	"github.com/pghive/pghive/internal/schema"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// goldenSchema builds a fixture exercising every serializer feature:
// mandatory/optional properties, all six data types, enum and
// integer-range refinements, free-form strings (DistinctOverflow),
// multi-label and abstract node types, every cardinality class, and
// an edge type with several observed endpoint pairs. Derived fields
// are set directly (not via infer) so the fixture is immune to
// inference-threshold changes — these tests pin serialization only.
func goldenSchema() *schema.Schema {
	s := schema.New()

	person := schema.NewNodeCandidate()
	person.Token = "Person"
	person.Labels["Person"] = 7
	person.Instances = 7
	person.Props["name"] = &schema.PropStat{Count: 7, Mandatory: true, DataType: pg.KindString, DistinctOverflow: true}
	person.Props["age"] = &schema.PropStat{Count: 7, Mandatory: true, DataType: pg.KindInt, HasIntRange: true, MinInt: 18, MaxInt: 99}
	person.Props["score"] = &schema.PropStat{Count: 3, DataType: pg.KindFloat}
	person.Props["active"] = &schema.PropStat{Count: 7, Mandatory: true, DataType: pg.KindBool}
	person.Props["born"] = &schema.PropStat{Count: 7, Mandatory: true, DataType: pg.KindDate}
	person.Props["lastSeen"] = &schema.PropStat{Count: 2, DataType: pg.KindDateTime}
	person.Props["tier"] = &schema.PropStat{Count: 7, Mandatory: true, DataType: pg.KindString, Enum: []string{"bronze", "gold", "silver"}}

	admin := schema.NewNodeCandidate()
	admin.Token = "Admin&Person"
	admin.Labels["Person"] = 2
	admin.Labels["Admin"] = 2
	admin.Instances = 2
	admin.Props["name"] = &schema.PropStat{Count: 2, Mandatory: true, DataType: pg.KindString}

	org := schema.NewNodeCandidate()
	org.Token = "Org"
	org.Labels["Org"] = 3
	org.Instances = 3
	org.Props["name"] = &schema.PropStat{Count: 3, Mandatory: true, DataType: pg.KindString}

	ghost := schema.NewNodeCandidate()
	ghost.Abstract = true
	ghost.Instances = 1
	ghost.Props["payload"] = &schema.PropStat{Count: 1, Mandatory: true, DataType: pg.KindString}

	s.AppendNodeTypes([]*schema.NodeType{person, admin, org, ghost})

	knows := schema.NewEdgeCandidate()
	knows.Token = "KNOWS"
	knows.Labels["KNOWS"] = 9
	knows.Instances = 9
	knows.SrcTokens["Person"] = true
	knows.DstTokens["Person"] = true
	knows.Cardinality = schema.CardManyToMany
	knows.Props["since"] = &schema.PropStat{Count: 9, Mandatory: true, DataType: pg.KindInt}

	worksAt := schema.NewEdgeCandidate()
	worksAt.Token = "WORKS_AT"
	worksAt.Labels["WORKS_AT"] = 6
	worksAt.Instances = 6
	// Two observed source types: serializers emit one connection
	// pattern per (src, dst) pair.
	worksAt.SrcTokens["Person"] = true
	worksAt.SrcTokens["Admin&Person"] = true
	worksAt.DstTokens["Org"] = true
	worksAt.Cardinality = schema.CardManyToOne

	manages := schema.NewEdgeCandidate()
	manages.Token = "MANAGES"
	manages.Labels["MANAGES"] = 2
	manages.Instances = 2
	manages.SrcTokens["Org"] = true
	manages.DstTokens["Person"] = true
	manages.Cardinality = schema.CardOneToMany

	spouse := schema.NewEdgeCandidate()
	spouse.Token = "SPOUSE_OF"
	spouse.Labels["SPOUSE_OF"] = 1
	spouse.Instances = 1
	spouse.SrcTokens["Person"] = true
	spouse.DstTokens["Person"] = true
	spouse.Cardinality = schema.CardOneToOne

	link := schema.NewEdgeCandidate()
	link.Abstract = true
	link.Instances = 1
	link.Props["weight"] = &schema.PropStat{Count: 1, Mandatory: true, DataType: pg.KindFloat}

	s.AppendEdgeTypes([]*schema.EdgeType{knows, worksAt, manages, spouse, link})
	return s
}

func TestGoldenSerializations(t *testing.T) {
	s := goldenSchema()
	cases := []struct {
		file string
		got  string
	}{
		{"pgschema_strict.golden", PGSchema(s, Strict, "GoldenGraph")},
		{"pgschema_loose.golden", PGSchema(s, Loose, "GoldenGraph")},
		{"xsd.golden", XSD(s)},
		{"dot.golden", DOT(s, "GoldenGraph")},
	}
	for _, c := range cases {
		t.Run(c.file, func(t *testing.T) {
			path := filepath.Join("testdata", c.file)
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(c.got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if c.got != string(want) {
				t.Errorf("output differs from %s:\n%s\n\nregenerate with -update if the change is intentional",
					path, diffHint(string(want), c.got))
			}
		})
	}
}

// The golden render must also be deterministic run to run — a map
// iteration leaking into any serializer would flap the golden tests.
func TestGoldenSerializationsDeterministic(t *testing.T) {
	a, b := goldenSchema(), goldenSchema()
	for _, mode := range []Mode{Strict, Loose} {
		if PGSchema(a, mode, "G") != PGSchema(b, mode, "G") {
			t.Fatalf("PGSchema %v render is nondeterministic", mode)
		}
	}
	if XSD(a) != XSD(b) {
		t.Fatal("XSD render is nondeterministic")
	}
	if DOT(a, "G") != DOT(b, "G") {
		t.Fatal("DOT render is nondeterministic")
	}
}

// diffHint shows the first differing line of two renders.
func diffHint(want, got string) string {
	wl, gl := splitLines(want), splitLines(got)
	for i := 0; i < len(wl) || i < len(gl); i++ {
		w, g := "", ""
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			return fmt.Sprintf("line %d:\n  want: %q\n  got:  %q", i+1, w, g)
		}
	}
	return "(no line-level difference found)"
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
