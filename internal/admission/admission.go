// Package admission is the overload-protection layer in front of an
// HTTP serving stack: it decides which requests may run at all, and
// under what deadline, before any handler does real work.
//
// The gate composes five defenses, each cheap and independently
// configurable:
//
//   - A global concurrent-request limit. Past it the server answers
//     503 + Retry-After instead of queueing unboundedly; latency under
//     overload stays bounded because work in excess of capacity is
//     refused at the door, not buffered.
//   - A smaller write-admission limit for mutating endpoints. Writes
//     serialize on the service write lock anyway, so admitting more
//     than a short queue of them only grows tail latency; excess
//     writes get 429 + Retry-After, the signal a well-behaved client
//     backs off on.
//   - A per-request deadline, propagated via context.Context into the
//     handler (and from there into the service write path), so a
//     stalled disk or a queue stuck behind a huge drain cannot pin a
//     goroutine forever.
//   - A request-body size cap via http.MaxBytesReader, turning a
//     hostile or buggy client's unbounded upload into a clean 413.
//   - Panic recovery: a handler bug answers 500 on that one request
//     instead of killing the whole process.
//
// Draining is first-class: once Drain is called the gate refuses new
// work with 503 + Retry-After (readiness probes watching Ready flip
// the instance out of load-balancer rotation) while in-flight
// requests finish, which is what makes SIGTERM a graceful handoff
// rather than a connection reset.
package admission

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Config tunes a Gate. Zero values select the documented defaults.
type Config struct {
	// MaxConcurrent caps requests running at once across all
	// endpoints (default 64; <0 disables the cap).
	MaxConcurrent int
	// MaxWriteQueue caps mutating requests admitted at once — running
	// plus waiting on the service write lock (default 8; <0 disables).
	MaxWriteQueue int
	// RequestTimeout is the per-request deadline installed on the
	// request context (default 30s; <0 disables).
	RequestTimeout time.Duration
	// MaxBodyBytes caps a request body (default 32 MiB; <0 disables).
	MaxBodyBytes int64
	// RetryAfter is the hint sent with 429/503 responses (default 1s).
	RetryAfter time.Duration
	// OnPanic observes recovered handler panics. Optional.
	OnPanic func(val any)
}

// Defaults applied by New when the corresponding Config field is
// zero; see the Config field docs for what each limit governs.
const (
	DefaultMaxConcurrent  = 64
	DefaultMaxWriteQueue  = 8
	DefaultRequestTimeout = 30 * time.Second
	DefaultMaxBodyBytes   = 32 << 20
	DefaultRetryAfter     = time.Second
)

func (c Config) withDefaults() Config {
	if c.MaxConcurrent == 0 {
		c.MaxConcurrent = DefaultMaxConcurrent
	}
	if c.MaxWriteQueue == 0 {
		c.MaxWriteQueue = DefaultMaxWriteQueue
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = DefaultRequestTimeout
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = DefaultRetryAfter
	}
	return c
}

// Stats is a point-in-time snapshot of gate occupancy.
type Stats struct {
	// InFlight / MaxConcurrent describe the global limit (Max* are 0
	// when the corresponding cap is disabled).
	InFlight      int `json:"inFlight"`
	MaxConcurrent int `json:"maxConcurrent,omitempty"`
	// WritesInFlight / MaxWriteQueue describe the write gate.
	WritesInFlight int `json:"writesInFlight"`
	MaxWriteQueue  int `json:"maxWriteQueue,omitempty"`
	// Rejected counts requests refused since start (429/503/413).
	Rejected uint64 `json:"rejected"`
	// Panics counts handler panics recovered since start.
	Panics uint64 `json:"panics"`
	// Draining reports a gate that refuses new work (see Drain).
	Draining bool `json:"draining,omitempty"`
}

// Gate is the admission gate. All methods are safe for concurrent
// use. The zero value is not usable; call New.
type Gate struct {
	cfg      Config
	conc     chan struct{} // nil = unlimited
	writes   chan struct{} // nil = unlimited
	rejected atomic.Uint64
	panics   atomic.Uint64
	draining atomic.Bool

	mu       sync.Mutex
	inflight int
	drained  chan struct{} // closed when inflight hits 0 while draining
}

// New builds a gate from cfg (zero fields get defaults).
func New(cfg Config) *Gate {
	cfg = cfg.withDefaults()
	g := &Gate{cfg: cfg}
	if cfg.MaxConcurrent > 0 {
		g.conc = make(chan struct{}, cfg.MaxConcurrent)
	}
	if cfg.MaxWriteQueue > 0 {
		g.writes = make(chan struct{}, cfg.MaxWriteQueue)
	}
	return g
}

// Stats snapshots the gate.
func (g *Gate) Stats() Stats {
	g.mu.Lock()
	inflight := g.inflight
	g.mu.Unlock()
	st := Stats{
		InFlight: inflight,
		Rejected: g.rejected.Load(),
		Panics:   g.panics.Load(),
		Draining: g.draining.Load(),
	}
	if g.conc != nil {
		st.MaxConcurrent = g.cfg.MaxConcurrent
	}
	if g.writes != nil {
		st.WritesInFlight = len(g.writes)
		st.MaxWriteQueue = g.cfg.MaxWriteQueue
	}
	return st
}

// Draining reports whether the gate has stopped admitting new work.
func (g *Gate) Draining() bool { return g.draining.Load() }

// Drain stops admitting new requests and returns a channel that
// closes when every in-flight request has finished. Safe to call more
// than once; later calls observe the same channel.
func (g *Gate) Drain() <-chan struct{} {
	g.draining.Store(true)
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.drained == nil {
		g.drained = make(chan struct{})
		if g.inflight == 0 {
			close(g.drained)
		}
	}
	return g.drained
}

func (g *Gate) enter() {
	g.mu.Lock()
	g.inflight++
	g.mu.Unlock()
}

func (g *Gate) exit() {
	g.mu.Lock()
	g.inflight--
	if g.inflight == 0 && g.draining.Load() && g.drained != nil {
		select {
		case <-g.drained:
		default:
			close(g.drained)
		}
	}
	g.mu.Unlock()
}

// reject answers an over-capacity or draining request with status and
// a Retry-After hint, counting it.
func (g *Gate) reject(w http.ResponseWriter, status int, reason string) {
	g.rejected.Add(1)
	secs := int(g.cfg.RetryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	fmt.Fprintf(w, "{\"error\":%q}\n", reason)
}

// Wrap applies the full gate to an http.Handler: panic recovery,
// drain refusal, the global concurrency limit, the per-request
// deadline, and the body cap. Mutating handlers should be wrapped
// with WrapWrite instead (it adds the write gate on top).
func (g *Gate) Wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if g.draining.Load() {
			g.reject(w, http.StatusServiceUnavailable, "server is draining")
			return
		}
		if g.conc != nil {
			select {
			case g.conc <- struct{}{}:
				defer func() { <-g.conc }()
			default:
				g.reject(w, http.StatusServiceUnavailable, "server at concurrent-request capacity")
				return
			}
		}
		g.enter()
		defer g.exit()
		defer g.recover(w, r)
		g.serveWithDeadline(next, w, r)
	})
}

// WrapWrite is Wrap plus the bounded write-admission gate: past
// MaxWriteQueue admitted writes the request is refused with 429 +
// Retry-After — the backpressure signal clients back off on.
func (g *Gate) WrapWrite(next http.Handler) http.Handler {
	gated := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if g.writes != nil {
			select {
			case g.writes <- struct{}{}:
				defer func() { <-g.writes }()
			default:
				g.reject(w, http.StatusTooManyRequests, "write queue full")
				return
			}
		}
		next.ServeHTTP(w, r)
	})
	return g.Wrap(gated)
}

func (g *Gate) serveWithDeadline(next http.Handler, w http.ResponseWriter, r *http.Request) {
	if g.cfg.MaxBodyBytes > 0 && r.Body != nil {
		lb := &limitedBody{ReadCloser: http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes)}
		r.Body = lb
		r = r.WithContext(context.WithValue(r.Context(), bodyLimitKey{}, lb))
	}
	if g.cfg.RequestTimeout > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), g.cfg.RequestTimeout)
		defer cancel()
		r = r.WithContext(ctx)
	}
	next.ServeHTTP(w, r)
}

type bodyLimitKey struct{}

// limitedBody remembers that the MaxBytesReader under it tripped.
// Streaming parsers often report a syntax error on the truncated tail
// instead of propagating *http.MaxBytesError, so handlers need a way
// to ask after the fact — BodyLimitExceeded.
type limitedBody struct {
	io.ReadCloser
	exceeded atomic.Bool
}

func (b *limitedBody) Read(p []byte) (int, error) {
	n, err := b.ReadCloser.Read(p)
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		b.exceeded.Store(true)
	}
	return n, err
}

// BodyLimitExceeded reports whether r's body hit the gate's
// MaxBodyBytes cap — the request deserves a 413 no matter what error
// the body parser surfaced.
func BodyLimitExceeded(r *http.Request) bool {
	lb, _ := r.Context().Value(bodyLimitKey{}).(*limitedBody)
	return lb != nil && lb.exceeded.Load()
}

// recover turns a handler panic into a 500 for that request alone.
// The response may already be partly written; WriteHeader past that
// point is a no-op and the client sees a truncated body — still
// strictly better than losing the process.
func (g *Gate) recover(w http.ResponseWriter, r *http.Request) {
	val := recover()
	if val == nil {
		return
	}
	if val == http.ErrAbortHandler {
		panic(val) // the server's own abort protocol; let it through
	}
	g.panics.Add(1)
	if g.cfg.OnPanic != nil {
		g.cfg.OnPanic(val)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusInternalServerError)
	fmt.Fprintf(w, "{\"error\":\"internal server error\"}\n")
}
