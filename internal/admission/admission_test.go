package admission

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func get(t *testing.T, h http.Handler, method, path string, body io.Reader) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(method, path, body))
	return rec
}

func TestConcurrencyLimitRejectsWith503(t *testing.T) {
	g := New(Config{MaxConcurrent: 2, MaxWriteQueue: -1, RequestTimeout: -1})
	release := make(chan struct{})
	started := make(chan struct{}, 4)
	h := g.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		started <- struct{}{}
		<-release
	}))

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			get(t, h, http.MethodGet, "/schema", nil)
		}()
	}
	<-started
	<-started

	rec := get(t, h, http.MethodGet, "/schema", nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("over-capacity request: got %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	close(release)
	wg.Wait()
	if st := g.Stats(); st.Rejected != 1 {
		t.Fatalf("Rejected = %d, want 1", st.Rejected)
	}
}

func TestWriteGateRejectsWith429(t *testing.T) {
	g := New(Config{MaxConcurrent: -1, MaxWriteQueue: 1, RequestTimeout: -1})
	release := make(chan struct{})
	started := make(chan struct{}, 2)
	h := g.WrapWrite(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		started <- struct{}{}
		<-release
	}))

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		get(t, h, http.MethodPost, "/ingest", strings.NewReader("{}"))
	}()
	<-started

	rec := get(t, h, http.MethodPost, "/ingest", strings.NewReader("{}"))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over-quota write: got %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	close(release)
	wg.Wait()
}

func TestRequestDeadlineInstalledOnContext(t *testing.T) {
	g := New(Config{RequestTimeout: 50 * time.Millisecond, MaxConcurrent: -1, MaxWriteQueue: -1})
	var deadline time.Time
	var ok bool
	h := g.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		deadline, ok = r.Context().Deadline()
	}))
	get(t, h, http.MethodGet, "/", nil)
	if !ok {
		t.Fatal("handler context has no deadline")
	}
	if until := time.Until(deadline); until > 50*time.Millisecond {
		t.Fatalf("deadline %v away, want <= 50ms", until)
	}
}

func TestBodyCapReturns413(t *testing.T) {
	g := New(Config{MaxBodyBytes: 8, MaxConcurrent: -1, MaxWriteQueue: -1, RequestTimeout: -1})
	var readErr error
	h := g.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, readErr = io.ReadAll(r.Body)
		if readErr != nil {
			// The cap already wrote the 413 status via MaxBytesReader's
			// ResponseWriter hook; handlers just stop.
			http.Error(w, readErr.Error(), http.StatusRequestEntityTooLarge)
		}
	}))
	rec := get(t, h, http.MethodPost, "/ingest", strings.NewReader(strings.Repeat("x", 100)))
	if readErr == nil {
		t.Fatal("oversized body read succeeded past the cap")
	}
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("got %d, want 413", rec.Code)
	}
}

func TestPanicRecoveryAnswers500(t *testing.T) {
	var observed any
	g := New(Config{OnPanic: func(v any) { observed = v }, MaxConcurrent: -1, MaxWriteQueue: -1, RequestTimeout: -1})
	h := g.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("boom")
	}))
	rec := get(t, h, http.MethodGet, "/", nil)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("got %d, want 500", rec.Code)
	}
	if observed != "boom" {
		t.Fatalf("OnPanic observed %v, want boom", observed)
	}
	if st := g.Stats(); st.Panics != 1 {
		t.Fatalf("Panics = %d, want 1", st.Panics)
	}
}

func TestDrainRefusesNewWorkAndCompletes(t *testing.T) {
	g := New(Config{MaxConcurrent: -1, MaxWriteQueue: -1, RequestTimeout: -1})
	release := make(chan struct{})
	started := make(chan struct{})
	h := g.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(started)
		<-release
	}))
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		get(t, h, http.MethodGet, "/", nil)
	}()
	<-started

	done := g.Drain()
	rec := get(t, h, http.MethodGet, "/", nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining gate admitted a request: %d", rec.Code)
	}
	select {
	case <-done:
		t.Fatal("drain completed with a request still in flight")
	default:
	}
	close(release)
	wg.Wait()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("drain did not complete after the in-flight request finished")
	}
	if !g.Draining() {
		t.Fatal("Draining() = false after Drain")
	}
}

func TestDrainWithNoInFlightCompletesImmediately(t *testing.T) {
	g := New(Config{})
	select {
	case <-g.Drain():
	case <-time.After(time.Second):
		t.Fatal("idle drain did not complete")
	}
}

func TestDeadlinePropagatesCancellation(t *testing.T) {
	g := New(Config{RequestTimeout: 20 * time.Millisecond, MaxConcurrent: -1, MaxWriteQueue: -1})
	var err error
	h := g.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
		err = r.Context().Err()
	}))
	get(t, h, http.MethodGet, "/", nil)
	if err != context.DeadlineExceeded {
		t.Fatalf("context ended with %v, want DeadlineExceeded", err)
	}
}
