package wal

// AppendBatch (the group-commit primitive) tests: one fsync per
// group, consecutive LSNs, replay equivalence with single appends,
// rotation at group granularity, and all-or-nothing rollback when the
// group's write or sync fails.

import (
	"errors"
	"fmt"
	"testing"

	"github.com/pghive/pghive/internal/vfs"
)

func batch(n int, tag string) []BatchRecord {
	recs := make([]BatchRecord, n)
	for i := range recs {
		recs[i] = BatchRecord{Type: 1, Payload: []byte(fmt.Sprintf("%s-%d", tag, i))}
	}
	return recs
}

func TestAppendBatchOneSyncPerGroup(t *testing.T) {
	mem := vfs.NewMemFS()
	l, err := Open("/w", Options{FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	first, err := l.AppendBatch(batch(8, "g1"))
	if err != nil {
		t.Fatal(err)
	}
	if first != 1 {
		t.Fatalf("first LSN = %d, want 1", first)
	}
	if got := l.Syncs(); got != 1 {
		t.Fatalf("Syncs after one group of 8 = %d, want 1", got)
	}
	if got := l.NextLSN(); got != 9 {
		t.Fatalf("NextLSN = %d, want 9", got)
	}

	// A second group continues the LSN sequence, one more fsync.
	first, err = l.AppendBatch(batch(3, "g2"))
	if err != nil {
		t.Fatal(err)
	}
	if first != 9 {
		t.Fatalf("second group first LSN = %d, want 9", first)
	}
	if got := l.Syncs(); got != 2 {
		t.Fatalf("Syncs after two groups = %d, want 2", got)
	}

	// Replay sees all 11 records in order, indistinguishable from
	// single appends.
	var lsns []uint64
	var payloads []string
	if err := l.Replay(0, func(rec Record) error {
		lsns = append(lsns, rec.LSN)
		payloads = append(payloads, string(rec.Payload))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(lsns) != 11 {
		t.Fatalf("replayed %d records, want 11", len(lsns))
	}
	for i, lsn := range lsns {
		if lsn != uint64(i+1) {
			t.Fatalf("replay LSN[%d] = %d, want %d", i, lsn, i+1)
		}
	}
	if payloads[0] != "g1-0" || payloads[8] != "g2-0" || payloads[10] != "g2-2" {
		t.Fatalf("replay payloads wrong: %v", payloads)
	}
}

func TestAppendBatchEmptyIsNoOp(t *testing.T) {
	mem := vfs.NewMemFS()
	l, err := Open("/w", Options{FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	first, err := l.AppendBatch(nil)
	if err != nil || first != 0 {
		t.Fatalf("AppendBatch(nil) = %d, %v; want 0, nil", first, err)
	}
	if got := l.Syncs(); got != 0 {
		t.Fatalf("empty batch issued %d fsyncs", got)
	}
}

// TestAppendBatchNeverSpansRotation: a group that does not fit the
// active segment seals it first; the whole group lands in the next
// segment, so a group is never split across files.
func TestAppendBatchNeverSpansRotation(t *testing.T) {
	mem := vfs.NewMemFS()
	l, err := Open("/w", Options{FS: mem, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(1, []byte("seed-record-to-occupy-space")); err != nil {
		t.Fatal(err)
	}
	// 8 records * (17+10)B ≈ 216B: does not fit behind the seed.
	first, err := l.AppendBatch(batch(8, "group-pay"))
	if err != nil {
		t.Fatal(err)
	}
	sealed := l.Sealed()
	if len(sealed) != 1 {
		t.Fatalf("sealed segments = %d, want 1 (rotation before the group)", len(sealed))
	}
	if sealed[0].Last != 1 {
		t.Fatalf("sealed segment covers to %d, want 1", sealed[0].Last)
	}
	if first != 2 {
		t.Fatalf("group first LSN = %d, want 2", first)
	}
	// The active segment holds the whole group.
	var seen int
	if err := l.Replay(1, func(rec Record) error { seen++; return nil }); err != nil {
		t.Fatal(err)
	}
	if seen != 8 {
		t.Fatalf("replayed %d group records, want 8", seen)
	}
}

// TestAppendBatchRollbackAllOrNothing: a failed group sync rolls back
// every frame of the group; earlier records survive untouched and the
// log keeps accepting appends.
func TestAppendBatchRollbackAllOrNothing(t *testing.T) {
	mem := vfs.NewMemFS()
	boom := errors.New("boom")
	// Sync 1: the seed append. Sync 2: the failed group.
	plan := vfs.NewPlan(vfs.Fault{Op: vfs.OpSync, N: 2, Mode: vfs.FailLate, Err: boom})
	ifs := vfs.NewInjectFS(mem, plan)
	l, err := Open("/w", Options{FS: ifs})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(1, []byte("seed")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendBatch(batch(5, "doomed")); err == nil {
		t.Fatal("AppendBatch survived an injected sync failure")
	}
	if l.Broken() {
		t.Fatal("log broken: group rollback should have succeeded")
	}
	// The next group reuses LSN 2 cleanly.
	first, err := l.AppendBatch(batch(2, "retry"))
	if err != nil {
		t.Fatal(err)
	}
	if first != 2 {
		t.Fatalf("retry first LSN = %d, want 2", first)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery sees seed + retry group, nothing of the doomed group.
	l2, err := Open("/w", Options{FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	var payloads []string
	if err := l2.Replay(0, func(rec Record) error {
		payloads = append(payloads, string(rec.Payload))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := []string{"seed", "retry-0", "retry-1"}
	if len(payloads) != len(want) {
		t.Fatalf("recovered %v, want %v", payloads, want)
	}
	for i := range want {
		if payloads[i] != want[i] {
			t.Fatalf("recovered %v, want %v", payloads, want)
		}
	}
}

// TestAppendBatchRollbackFailureBreaksLog: when the rollback itself
// fails, the whole log is marked broken, same as a single append.
func TestAppendBatchRollbackFailureBreaksLog(t *testing.T) {
	mem := vfs.NewMemFS()
	plan := vfs.NewPlan(
		vfs.Fault{Op: vfs.OpSync, N: 1, Mode: vfs.FailLate},
		vfs.Fault{Op: vfs.OpTruncate, N: 1, Mode: vfs.FailEarly},
	)
	ifs := vfs.NewInjectFS(mem, plan)
	l, err := Open("/w", Options{FS: ifs})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.AppendBatch(batch(4, "doomed")); err == nil {
		t.Fatal("AppendBatch survived an injected sync failure")
	}
	if !l.Broken() {
		t.Fatal("log not broken after failed rollback")
	}
	if _, err := l.AppendBatch(batch(1, "after")); err == nil {
		t.Fatal("broken log accepted a batch")
	}
}
