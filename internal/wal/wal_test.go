package wal

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// collect replays the whole log into a slice (payloads copied).
func collect(t *testing.T, l *Log, after uint64) []Record {
	t.Helper()
	var recs []Record
	err := l.Replay(after, func(r Record) error {
		recs = append(recs, Record{LSN: r.LSN, Type: r.Type, Payload: append([]byte(nil), r.Payload...)})
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return recs
}

func appendN(t *testing.T, l *Log, n int, from int) {
	t.Helper()
	for i := 0; i < n; i++ {
		payload := []byte(fmt.Sprintf("payload-%04d", from+i))
		if _, err := l.Append(byte(1+(from+i)%3), payload); err != nil {
			t.Fatalf("append %d: %v", from+i, err)
		}
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 10, 0)
	recs := collect(t, l, 0)
	if len(recs) != 10 {
		t.Fatalf("replayed %d records, want 10", len(recs))
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) {
			t.Fatalf("record %d has LSN %d, want %d", i, r.LSN, i+1)
		}
		if want := fmt.Sprintf("payload-%04d", i); string(r.Payload) != want {
			t.Fatalf("record %d payload %q, want %q", i, r.Payload, want)
		}
		if r.Type != byte(1+i%3) {
			t.Fatalf("record %d type %d, want %d", i, r.Type, 1+i%3)
		}
	}
	// The after filter skips the prefix.
	if got := collect(t, l, 7); len(got) != 3 || got[0].LSN != 8 {
		t.Fatalf("replay after 7 returned %d records starting at %v", len(got), got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: same records, appends continue the LSN sequence in the
	// same segment file.
	l2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.NextLSN(); got != 11 {
		t.Fatalf("NextLSN after reopen = %d, want 11", got)
	}
	appendN(t, l2, 2, 10)
	if got := collect(t, l2, 0); len(got) != 12 || got[11].LSN != 12 {
		t.Fatalf("after reopen+append: %d records, last LSN %d", len(got), got[len(got)-1].LSN)
	}
}

func TestRotationSealsAndPrunes(t *testing.T) {
	dir := t.TempDir()
	// Tiny threshold: every record rotates into its own segment.
	l, err := Open(dir, Options{SegmentBytes: 1, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 5, 0)
	if sealed := l.Sealed(); len(sealed) != 4 {
		t.Fatalf("%d sealed segments, want 4 (active holds the 5th)", len(sealed))
	}
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	sealed := l.Sealed()
	if len(sealed) != 5 {
		t.Fatalf("%d sealed segments after Rotate, want 5", len(sealed))
	}
	for i, seg := range sealed {
		if seg.First != uint64(i+1) || seg.Last != uint64(i+1) || seg.Records != 1 {
			t.Fatalf("segment %d = %+v, want single record %d", i, seg, i+1)
		}
	}

	// Prune everything up to LSN 3; replay must still work above it.
	n, err := l.Prune(3)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("pruned %d segments, want 3", n)
	}
	if got := collect(t, l, 3); len(got) != 2 || got[0].LSN != 4 {
		t.Fatalf("replay after prune: %v", got)
	}
	// Replaying from 0 now must fail loudly: records 1-3 are gone.
	if err := l.Replay(0, func(Record) error { return nil }); err == nil {
		t.Fatal("replay over a pruned prefix succeeded; want gap error")
	}
	// A rotate with no new records is a no-op, and appends continue.
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 1, 5)
	if got := l.NextLSN(); got != 7 {
		t.Fatalf("NextLSN = %d, want 7", got)
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 3, 0)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "*"+segSuffix))
	if len(segs) != 1 {
		t.Fatalf("%d segments, want 1", len(segs))
	}
	seg := segs[0]

	cases := []struct {
		name string
		harm func(t *testing.T, path string)
		want int // surviving records
	}{
		{"garbage-appended", func(t *testing.T, path string) {
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x01})
			f.Close()
		}, 3},
		{"partial-record-appended", func(t *testing.T, path string) {
			// A plausible header with a length the file doesn't hold.
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			f.Write([]byte{40, 0, 0, 0, 1, 2, 3, 4, 9, 9})
			f.Close()
		}, 3},
		{"tail-cut-mid-record", func(t *testing.T, path string) {
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, fi.Size()-3); err != nil {
				t.Fatal(err)
			}
		}, 2},
		{"tail-record-bit-flip", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)-2] ^= 0x40 // inside the last record's payload
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}, 2},
	}
	pristine, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := os.WriteFile(seg, pristine, 0o644); err != nil {
				t.Fatal(err)
			}
			c.harm(t, seg)
			l, err := Open(dir, Options{NoSync: true})
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			got := collect(t, l, 0)
			if len(got) != c.want {
				t.Fatalf("recovered %d records, want %d", len(got), c.want)
			}
			// The torn bytes are gone: appends continue right after the
			// last durable record and replay cleanly.
			if _, err := l.Append(7, []byte("after-recovery")); err != nil {
				t.Fatal(err)
			}
			got = collect(t, l, 0)
			last := got[len(got)-1]
			if len(got) != c.want+1 || string(last.Payload) != "after-recovery" || last.LSN != uint64(c.want+1) {
				t.Fatalf("after recovery append: %d records, last %+v", len(got), last)
			}
		})
	}
}

func TestMidLogCorruptionIsAnError(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 1, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 3, 0) // three single-record segments
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "*"+segSuffix))
	if len(segs) != 3 {
		t.Fatalf("%d segments, want 3", len(segs))
	}
	// Flip a byte inside the FIRST segment: its record is lost, but
	// records exist after it, which no crash can produce — replay (and
	// the next Open's scan, which tolerates it) must not silently skip
	// the gap.
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0x10
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if err := l2.Replay(0, func(Record) error { return nil }); err == nil {
		t.Fatal("replay over mid-log corruption succeeded; want error")
	}
}

func TestReplayStop(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 5, 0)
	var seen []uint64
	err = l.Replay(0, func(r Record) error {
		if r.LSN > 2 {
			return ErrStopReplay
		}
		seen = append(seen, r.LSN)
		return nil
	})
	if err != nil {
		t.Fatalf("ErrStopReplay leaked: %v", err)
	}
	if len(seen) != 2 {
		t.Fatalf("saw %d records before stop, want 2", len(seen))
	}
}

func TestMinLSNFloorsNumbering(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true, MinLSN: 42})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	lsn, err := l.Append(1, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 42 {
		t.Fatalf("first LSN = %d, want 42 (a checkpoint covering 41 would otherwise hide this record)", lsn)
	}
	// Records below the floor were pruned; replay from the covered
	// point works, from zero it reports the gap.
	if got := collect(t, l, 41); len(got) != 1 {
		t.Fatalf("replay after 41: %d records, want 1", len(got))
	}
	if err := l.Replay(0, func(Record) error { return nil }); err == nil {
		t.Fatal("replay from 0 over a pruned prefix succeeded; want gap error")
	}
}

func TestClosedLogErrors(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(1, nil); err != ErrClosed {
		t.Fatalf("Append after Close: %v, want ErrClosed", err)
	}
	if err := l.Replay(0, nil); err != ErrClosed {
		t.Fatalf("Replay after Close: %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "image.ckpt")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write([]byte("v1"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "v1" {
		t.Fatalf("content %q, want v1", got)
	}
	// A writer that fails must leave the previous content untouched
	// and no temporary file behind.
	err := WriteFileAtomic(path, func(w io.Writer) error {
		w.Write([]byte("half-written"))
		return fmt.Errorf("boom")
	})
	if err == nil || err.Error() != "boom" {
		t.Fatalf("error = %v, want boom", err)
	}
	if got, _ := os.ReadFile(path); string(got) != "v1" {
		t.Fatalf("failed write clobbered content: %q", got)
	}
	leftovers, _ := filepath.Glob(filepath.Join(dir, "*"+tmpSuffix))
	if len(leftovers) != 0 {
		t.Fatalf("temp files left behind: %v", leftovers)
	}
	// Overwrite succeeds and replaces wholesale.
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write(bytes.Repeat([]byte("v2"), 1000))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); len(got) != 2000 {
		t.Fatalf("overwrite length %d, want 2000", len(got))
	}
}

func TestOversizedRecordGetsOwnSegment(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 64, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	big := bytes.Repeat([]byte("B"), 300)
	if _, err := l.Append(1, []byte("small")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(1, big); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(1, []byte("small2")); err != nil {
		t.Fatal(err)
	}
	got := collect(t, l, 0)
	if len(got) != 3 || !bytes.Equal(got[1].Payload, big) {
		t.Fatalf("oversized record did not round trip: %d records", len(got))
	}
}
