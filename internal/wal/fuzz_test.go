package wal

// FuzzWALReplay hardens the segment reader against arbitrary on-disk
// states: random byte streams, bit-flipped records, and truncations
// must never panic, and must either replay cleanly or stop at the
// torn tail. The corpus is seeded with real segments built by the
// writer — the crash-point fixtures — plus truncated and corrupted
// variants of them, so the fuzzer starts from the formats the durable
// service actually produces.

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// buildSeedSegment writes records through a real Log and returns the
// segment file's bytes.
func buildSeedSegment(f *testing.F, payloads ...string) []byte {
	f.Helper()
	dir := f.TempDir()
	l, err := Open(dir, Options{NoSync: true})
	if err != nil {
		f.Fatal(err)
	}
	for i, p := range payloads {
		if _, err := l.Append(byte(1+i%3), []byte(p)); err != nil {
			f.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		f.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "*"+segSuffix))
	if err != nil || len(segs) != 1 {
		f.Fatalf("seed segment: %v (%d files)", err, len(segs))
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		f.Fatal(err)
	}
	return data
}

func FuzzWALReplay(f *testing.F) {
	// Crash-point fixtures: an intact multi-record segment, the JSONL
	// shape real WAL payloads carry, an empty log, and torn variants.
	intact := buildSeedSegment(f, "alpha", "beta", "gamma", "delta")
	jsonl := buildSeedSegment(f,
		`{"kind":"node","id":1,"labels":["Person"],"props":{"name":{"t":"string","v":"a"}}}`+"\n",
		`{"kind":"edge","id":1,"labels":["KNOWS"],"src":1,"dst":1}`+"\n")
	f.Add(intact)
	f.Add(jsonl)
	f.Add(intact[:len(intact)-5])                                // torn tail
	f.Add(intact[:len(segMagic)+3])                              // torn first header
	f.Add(append(append([]byte{}, intact...), 0xff, 0x00, 0xfe)) // trailing garbage
	flipped := append([]byte(nil), intact...)
	flipped[len(flipped)/2] ^= 0x20 // bit flip mid-log
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte("PGHWAL1\n"))
	f.Add([]byte("not a wal file at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		var recs []Record
		valid, err := ScanSegment(bytes.NewReader(data), func(r Record) error {
			recs = append(recs, Record{LSN: r.LSN, Type: r.Type, Payload: append([]byte(nil), r.Payload...)})
			return nil
		})
		if err != nil {
			// The callback never errs and bytes.Reader has no I/O
			// failures; any error here is a reader bug.
			t.Fatalf("ScanSegment error on in-memory data: %v", err)
		}
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("valid prefix %d outside [0, %d]", valid, len(data))
		}

		// Stopping at the torn tail must be a fixpoint: truncating at
		// the reported prefix and re-scanning yields exactly the same
		// records and the same (now clean) end.
		var again []Record
		valid2, err := ScanSegment(bytes.NewReader(data[:valid]), func(r Record) error {
			again = append(again, Record{LSN: r.LSN, Type: r.Type, Payload: append([]byte(nil), r.Payload...)})
			return nil
		})
		if err != nil {
			t.Fatalf("re-scan error: %v", err)
		}
		if valid2 != valid {
			t.Fatalf("truncation not a fixpoint: %d then %d", valid, valid2)
		}
		if len(again) != len(recs) {
			t.Fatalf("re-scan yielded %d records, first scan %d", len(again), len(recs))
		}
		for i := range recs {
			if recs[i].LSN != again[i].LSN || recs[i].Type != again[i].Type || !bytes.Equal(recs[i].Payload, again[i].Payload) {
				t.Fatalf("record %d differs between scans", i)
			}
		}

		// Re-writing the recovered records through a fresh log and
		// scanning that segment must reproduce types and payloads —
		// the replay-then-rewrite loop a compactor performs.
		if len(recs) == 0 {
			return
		}
		dir := t.TempDir()
		l, err := Open(dir, Options{NoSync: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			if _, err := l.Append(r.Type, r.Payload); err != nil {
				t.Fatal(err)
			}
		}
		var rewritten []Record
		if err := l.Replay(0, func(r Record) error {
			rewritten = append(rewritten, Record{Type: r.Type, Payload: append([]byte(nil), r.Payload...)})
			return nil
		}); err != nil {
			t.Fatalf("replay of rewritten log: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		if len(rewritten) != len(recs) {
			t.Fatalf("rewrite round trip: %d records, want %d", len(rewritten), len(recs))
		}
		for i := range recs {
			if recs[i].Type != rewritten[i].Type || !bytes.Equal(recs[i].Payload, rewritten[i].Payload) {
				t.Fatalf("rewrite round trip: record %d differs", i)
			}
		}
	})
}
