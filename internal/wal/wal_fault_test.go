package wal

// wal_fault_test.go: the log against a hostile disk. These tests run
// the WAL on vfs.MemFS wrapped in vfs.InjectFS, so a failed fsync, a
// short write, or a lying disk (data persisted, error reported) can
// be scheduled at an exact operation, the machine "crashed", and the
// reopened log inspected for exactly the records that were
// acknowledged — no more, no fewer.

import (
	"errors"
	"strings"
	"testing"

	"github.com/pghive/pghive/internal/vfs"
)

// faultLog opens a log on a fresh MemFS behind the given fault plan.
func faultLog(t *testing.T, plan *vfs.Plan) (*Log, *vfs.MemFS) {
	t.Helper()
	mem := vfs.NewMemFS()
	l, err := Open("wal", Options{FS: vfs.NewInjectFS(mem, plan), SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, mem
}

// reopen crashes the memfs and opens the surviving state fault-free.
func reopen(t *testing.T, mem *vfs.MemFS) *Log {
	t.Helper()
	mem.Crash()
	l, err := Open("wal", Options{FS: mem, SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	return l
}

// TestFailedSyncRollbackIsDurable is the regression test for the
// rollback-durability bug: Append's sync fails *late* — the disk
// persisted the frame and then reported failure — so the in-memory
// rollback truncation must itself be fsynced. Before the fix the
// truncation lived only in the cache; a crash resurrected the frame
// and recovery replayed a mutation the caller was told failed.
func TestFailedSyncRollbackIsDurable(t *testing.T) {
	// Per-kind op order: append 1 = write(magic), syncdir, write(frame),
	// sync#1; append 2 = write(frame), sync#2.
	plan := vfs.NewPlan(vfs.Fault{Op: vfs.OpSync, N: 2, Mode: vfs.FailLate})
	l, mem := faultLog(t, plan)
	if _, err := l.Append(1, []byte("acked")); err != nil {
		t.Fatalf("append 1: %v", err)
	}
	if _, err := l.Append(1, []byte("failed")); !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("append 2 err = %v, want injected sync failure", err)
	}
	if fired := plan.Fired(); len(fired) != 1 {
		t.Fatalf("fault did not fire: %v", fired)
	}

	// The fault is spent, so the rollback's own sync succeeded and the
	// log stays usable: the LSN is reused and the append lands.
	lsn, err := l.Append(1, []byte("retried"))
	if err != nil {
		t.Fatalf("append 3: %v", err)
	}
	if lsn != 2 {
		t.Fatalf("retried LSN = %d, want 2 (reuse of the failed LSN)", lsn)
	}
	l.Close()

	// Crash and recover: exactly the acknowledged records, in order.
	l2 := reopen(t, mem)
	defer l2.Close()
	recs := collect(t, l2, 0)
	if len(recs) != 2 || string(recs[0].Payload) != "acked" || string(recs[1].Payload) != "retried" {
		t.Fatalf("recovered %d records %q — the rolled-back frame must not resurrect", len(recs), payloads(recs))
	}
}

// TestFailedSyncRollbackCrashBeforeRetry crashes immediately after
// the failed append, with no retry: the un-acked frame must not be
// replayable even though the lying disk persisted it.
func TestFailedSyncRollbackCrashBeforeRetry(t *testing.T) {
	plan := vfs.NewPlan(vfs.Fault{Op: vfs.OpSync, N: 2, Mode: vfs.FailLate})
	l, mem := faultLog(t, plan)
	if _, err := l.Append(1, []byte("acked")); err != nil {
		t.Fatalf("append 1: %v", err)
	}
	if _, err := l.Append(1, []byte("failed")); err == nil {
		t.Fatal("append 2 succeeded, want injected failure")
	}

	l2 := reopen(t, mem)
	defer l2.Close()
	recs := collect(t, l2, 0)
	if len(recs) != 1 || string(recs[0].Payload) != "acked" {
		t.Fatalf("recovered %q, want exactly the acked record", payloads(recs))
	}
	if got := l2.NextLSN(); got != 2 {
		t.Fatalf("NextLSN = %d, want 2", got)
	}
}

// TestRollbackFailureBreaksLog: when the rollback cannot be made
// durable either (sync fails twice in a row), the log must refuse
// further appends rather than risk a duplicate LSN on disk.
func TestRollbackFailureBreaksLog(t *testing.T) {
	plan := vfs.NewPlan(
		vfs.Fault{Op: vfs.OpSync, N: 1, Mode: vfs.FailEarly}, // append's sync
		vfs.Fault{Op: vfs.OpSync, N: 2, Mode: vfs.FailEarly}, // rollback's sync
	)
	l, _ := faultLog(t, plan)
	defer l.Close()
	if _, err := l.Append(1, []byte("x")); err == nil {
		t.Fatal("append succeeded, want injected failure")
	}
	_, err := l.Append(1, []byte("y"))
	if err == nil || !strings.Contains(err.Error(), "broken") {
		t.Fatalf("append on broken log: err = %v, want broken-log refusal", err)
	}
}

// TestShortWriteRolledBack: a frame written halfway must vanish; the
// acknowledged prefix stays replayable and the log stays usable.
func TestShortWriteRolledBack(t *testing.T) {
	// Writes per kind: magic = 1, frame1 = 2, frame2 = 3.
	plan := vfs.NewPlan(vfs.Fault{Op: vfs.OpWrite, N: 3, Mode: vfs.ShortWrite})
	l, mem := faultLog(t, plan)
	if _, err := l.Append(1, []byte("acked")); err != nil {
		t.Fatalf("append 1: %v", err)
	}
	if _, err := l.Append(1, []byte("torn-by-short-write")); !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("append 2 err = %v, want injected short write", err)
	}
	if _, err := l.Append(1, []byte("after")); err != nil {
		t.Fatalf("append 3 after rollback: %v", err)
	}
	l.Close()

	l2 := reopen(t, mem)
	defer l2.Close()
	recs := collect(t, l2, 0)
	if len(recs) != 2 || string(recs[0].Payload) != "acked" || string(recs[1].Payload) != "after" {
		t.Fatalf("recovered %q, want [acked after]", payloads(recs))
	}
}

// TestSegmentCreateFailureLeavesNoResidue: when writing a new
// segment's magic fails, the created file must be removed — leaving a
// magic-less file would make every retry fail O_EXCL on a name the
// log still wants.
func TestSegmentCreateFailureLeavesNoResidue(t *testing.T) {
	plan := vfs.NewPlan(vfs.Fault{Op: vfs.OpWrite, N: 1, Mode: vfs.FailEarly}) // the magic write
	l, _ := faultLog(t, plan)
	defer l.Close()
	if _, err := l.Append(1, []byte("x")); !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("append err = %v, want injected magic-write failure", err)
	}
	lsn, err := l.Append(1, []byte("x"))
	if err != nil {
		t.Fatalf("retry after create failure: %v", err)
	}
	if lsn != 1 {
		t.Fatalf("retry LSN = %d, want 1", lsn)
	}
}

// TestSyncDirFailureSurfacedAndRetryable: a failed directory fsync on
// segment creation must surface as an append error (the dirent may
// not survive power loss) and must not wedge the log.
func TestSyncDirFailureSurfacedAndRetryable(t *testing.T) {
	plan := vfs.NewPlan(vfs.Fault{Op: vfs.OpSyncDir, N: 1, Mode: vfs.FailEarly})
	l, mem := faultLog(t, plan)
	if _, err := l.Append(1, []byte("x")); !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("append err = %v, want injected syncdir failure", err)
	}
	if _, err := l.Append(1, []byte("acked")); err != nil {
		t.Fatalf("retry: %v", err)
	}
	l.Close()

	l2 := reopen(t, mem)
	defer l2.Close()
	recs := collect(t, l2, 0)
	if len(recs) != 1 || string(recs[0].Payload) != "acked" {
		t.Fatalf("recovered %q, want [acked]", payloads(recs))
	}
}

func payloads(recs []Record) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = string(r.Payload)
	}
	return out
}
