// Package wal implements a segmented, checksummed append-only
// write-ahead log. Callers append typed binary records; each record
// is stamped with a monotonically increasing log sequence number
// (LSN), length-prefixed, and protected by a CRC, so a reader can
// always tell a complete record from the torn tail a crash (or a
// lying disk) leaves behind. The log is split into segment files that
// rotate at a size threshold; a compaction layer that has folded a
// prefix of the log into a checkpoint can delete the sealed segments
// that prefix covers (Prune) without touching the segment still being
// written.
//
// The package is payload-agnostic: record types are caller-defined
// bytes and payloads are opaque. Durability policy is per-log: by
// default every append is fsynced before it returns; Options.NoSync
// trades power-loss durability for speed (process crashes are still
// safe — the OS page cache survives kill -9).
//
// On-disk format. Every segment starts with an 8-byte magic and holds
// a sequence of frames:
//
//	u32 length   = 9 + len(payload)        (little endian)
//	u32 crc      = CRC-32C of the body
//	body         = u64 LSN | u8 type | payload
//
// A frame whose length is implausible, whose bytes are incomplete, or
// whose CRC does not match ends the readable prefix of its segment:
// scanning stops there, and Open truncates the final segment at that
// point so appends continue after the last durable record.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/pghive/pghive/internal/vfs"
)

const (
	// DefaultSegmentBytes is the rotation threshold used when
	// Options.SegmentBytes is zero.
	DefaultSegmentBytes = 8 << 20
	// MaxRecordBytes bounds a single frame. A corrupted length field
	// almost never passes the CRC, but the bound keeps a scanner from
	// attempting gigabyte reads before finding out.
	MaxRecordBytes = 1 << 30

	frameHeaderLen = 8 // u32 length + u32 crc
	bodyFixedLen   = 9 // u64 lsn + u8 type

	segSuffix = ".wal"
	tmpSuffix = ".tmp"
)

// segMagic identifies (and versions) a segment file.
var segMagic = []byte("PGHWAL1\n")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrStopReplay, returned by a Replay callback, halts the replay
// without error — the way a caller bounded by a target LSN stops at
// it.
var ErrStopReplay = errors.New("wal: stop replay")

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// Options configures a log.
type Options struct {
	// SegmentBytes is the rotation threshold: an append that would
	// grow the active segment past it seals the segment and starts a
	// new one (a single oversized record still gets a segment to
	// itself). Zero selects DefaultSegmentBytes.
	SegmentBytes int64
	// NoSync skips the per-append fsync. Appends remain safe against
	// process crashes (kill -9) but not against power loss.
	NoSync bool
	// MinLSN floors the next LSN Open assigns. A caller that restored
	// a checkpoint covering LSNs up to C must pass C+1: if every
	// segment the checkpoint superseded was pruned, a fresh log would
	// otherwise restart numbering at 1 and new records would hide
	// behind the checkpoint's replay filter.
	MinLSN uint64
	// FS is the filesystem the log lives on; nil selects the real OS.
	// Tests substitute vfs.MemFS / vfs.InjectFS to prove the log
	// survives hostile disks.
	FS vfs.FS
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	return o
}

// Record is one logged mutation.
type Record struct {
	// LSN is the record's log sequence number; consecutive records
	// have consecutive LSNs, starting at 1 (or Options.MinLSN).
	LSN uint64
	// Type is the caller-defined record type.
	Type byte
	// Payload is the caller's opaque payload. During replay the slice
	// is only valid for the duration of the callback.
	Payload []byte
}

// SegmentInfo describes one segment file.
type SegmentInfo struct {
	// Path is the segment file path.
	Path string
	// First and Last are the segment's LSN range (inclusive); zero
	// for a segment holding no complete records.
	First, Last uint64
	// Records counts complete records.
	Records int
	// Bytes is the readable prefix length, magic included.
	Bytes int64
}

// Log is a segmented write-ahead log rooted in one directory. Append,
// Rotate, Sealed, Prune and Close are safe for concurrent use; Replay
// may run concurrently with appends (it reads sealed segments and the
// active segment's already-durable prefix).
type Log struct {
	dir  string
	opts Options
	fs   vfs.FS

	mu          sync.Mutex
	closed      bool
	broken      bool // a failed append could not be rolled back
	active      vfs.File
	activeInfo  SegmentInfo
	sealed      []SegmentInfo
	nextLSN     uint64
	dirSyncedAt uint64 // last nextLSN at which the directory was fsynced

	// syncs counts successful fsyncs of the active segment — the
	// denominator of group-commit efficiency (records acked per fsync).
	syncs atomic.Uint64
}

// Open scans dir (creating it if needed), truncates the torn tail of
// the final segment, and returns a log positioned to append after the
// last durable record. Leftover temporary files from interrupted
// atomic writes are removed.
func Open(dir string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	fsys := vfs.OrOS(opts.FS)
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	names, err := fsys.Glob(filepath.Join(dir, "*"+segSuffix))
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if tmps, err := fsys.Glob(filepath.Join(dir, "*"+tmpSuffix)); err == nil {
		for _, t := range tmps {
			fsys.Remove(t)
		}
	}
	sort.Strings(names) // %020d names sort in LSN order

	l := &Log{dir: dir, opts: opts, fs: fsys, nextLSN: 1}
	if opts.MinLSN > l.nextLSN {
		l.nextLSN = opts.MinLSN
	}
	for i, name := range names {
		info, err := scanSegmentFile(fsys, name)
		if err != nil {
			return nil, err
		}
		last := i == len(names)-1
		if info.Records == 0 {
			// A segment with no complete record carries no state;
			// drop it (its name could collide with the next segment
			// this log creates).
			if err := fsys.Remove(name); err != nil {
				return nil, fmt.Errorf("wal: %w", err)
			}
			continue
		}
		if last {
			// Truncate the torn tail so the next append lands right
			// after the last durable record.
			if fi, err := fsys.Stat(name); err == nil && fi.Size() > info.Bytes {
				if err := fsys.Truncate(name, info.Bytes); err != nil {
					return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
				}
			}
		}
		if info.Last >= l.nextLSN {
			l.nextLSN = info.Last + 1
		}
		l.sealed = append(l.sealed, info)
	}

	// Reopen the final segment for appending when it has room;
	// otherwise it stays sealed and the next append starts a segment.
	if n := len(l.sealed); n > 0 {
		tail := l.sealed[n-1]
		if tail.Bytes < opts.SegmentBytes {
			f, err := fsys.OpenFile(tail.Path, os.O_WRONLY, 0)
			if err != nil {
				return nil, fmt.Errorf("wal: %w", err)
			}
			if _, err := f.Seek(tail.Bytes, io.SeekStart); err != nil {
				_ = f.Close()
				return nil, fmt.Errorf("wal: %w", err)
			}
			l.active = f
			l.activeInfo = tail
			l.sealed = l.sealed[:n-1]
		}
	}
	return l, nil
}

// segmentName returns the file name of a segment whose first record
// has the given LSN. Zero-padded decimal keeps lexical order equal to
// LSN order.
func segmentName(dir string, first uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%020d%s", first, segSuffix))
}

// Append writes one record, fsyncs it (unless Options.NoSync), and
// returns its LSN. The payload is not retained. Equivalent to an
// AppendBatch of one record.
func (l *Log) Append(t byte, payload []byte) (uint64, error) {
	return l.AppendBatch([]BatchRecord{{Type: t, Payload: payload}})
}

// BatchRecord is one record of an AppendBatch group: a caller-defined
// type byte and an opaque payload (not retained).
type BatchRecord struct {
	Type    byte
	Payload []byte
}

// AppendBatch writes the records as one durability group — all frames
// in a single write to the active segment followed by a single fsync
// (unless Options.NoSync) — and returns the LSN of the first record;
// the rest follow consecutively. This is the group-commit primitive:
// N concurrent writers coalesced into one group pay one fsync instead
// of N, and the durability contract is unchanged because no caller is
// acknowledged before the shared fsync returns.
//
// The group is all-or-nothing: on a write or sync failure every frame
// is rolled back together (truncate to the group's start), so either
// all records are durable or none is; a rollback that itself fails
// marks the log broken, exactly as for a single append. A group never
// spans a rotation — if it does not fit the active segment, the
// segment is sealed first and the whole group lands in the next one
// (an oversized group gets a segment to itself, like an oversized
// record). An empty recs is a no-op returning (0, nil).
func (l *Log) AppendBatch(recs []BatchRecord) (uint64, error) {
	if len(recs) == 0 {
		return 0, nil
	}
	var total int64
	for _, r := range recs {
		if len(r.Payload) > MaxRecordBytes-bodyFixedLen {
			return 0, fmt.Errorf("wal: record of %d bytes exceeds MaxRecordBytes", len(r.Payload))
		}
		total += int64(frameHeaderLen + bodyFixedLen + len(r.Payload))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.broken {
		return 0, fmt.Errorf("wal: log broken by an earlier append failure that could not be rolled back")
	}
	if l.active != nil && l.activeInfo.Records > 0 && l.activeInfo.Bytes+total > l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	if l.active == nil {
		if err := l.openSegmentLocked(); err != nil {
			return 0, err
		}
	}

	first := l.nextLSN
	buf := make([]byte, total)
	off := 0
	for i, r := range recs {
		frame := buf[off : off+frameHeaderLen+bodyFixedLen+len(r.Payload)]
		binary.LittleEndian.PutUint32(frame[0:4], uint32(bodyFixedLen+len(r.Payload)))
		body := frame[frameHeaderLen:]
		binary.LittleEndian.PutUint64(body[0:8], first+uint64(i))
		body[8] = r.Type
		copy(body[bodyFixedLen:], r.Payload)
		binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(body, castagnoli))
		off += len(frame)
	}

	if _, err := l.active.Write(buf); err != nil {
		l.rollbackAppendLocked()
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	if !l.opts.NoSync {
		if err := l.active.Sync(); err != nil {
			// The frames may be fully on disk even though their
			// durability is unknown; they MUST NOT survive — a retry
			// would write second frames with the same LSNs and the
			// continuity check would reject the log on recovery.
			l.rollbackAppendLocked()
			return 0, fmt.Errorf("wal: sync: %w", err)
		}
		l.syncs.Add(1)
	}
	if l.activeInfo.Records == 0 {
		l.activeInfo.First = first
	}
	l.activeInfo.Last = first + uint64(len(recs)-1)
	l.activeInfo.Records += len(recs)
	l.activeInfo.Bytes += total
	l.nextLSN = l.activeInfo.Last + 1
	return first, nil
}

// rollbackAppendLocked discards the bytes of a failed append so the
// segment ends exactly at the last acknowledged record: without it, a
// failed Sync could leave a complete frame on disk for an LSN the
// caller will reuse (duplicate LSN → unrecoverable continuity error
// on restart), and a partial write would leave garbage that makes
// recovery's CRC scan stop before later acknowledged records. If the
// rollback itself fails the log is marked broken and refuses further
// appends — better unavailable than silently unrecoverable.
func (l *Log) rollbackAppendLocked() {
	if err := l.active.Truncate(l.activeInfo.Bytes); err != nil {
		l.broken = true
		return
	}
	if _, err := l.active.Seek(l.activeInfo.Bytes, io.SeekStart); err != nil {
		l.broken = true
		return
	}
	if !l.opts.NoSync {
		// The truncation must itself be made durable. A failed fsync
		// does not promise the frame's bytes missed the platter — the
		// disk may have persisted them and then reported failure — so
		// without this sync a crash can resurrect the discarded frame
		// and recovery would replay a mutation the caller was told
		// failed.
		if err := l.active.Sync(); err != nil {
			l.broken = true
		}
	}
}

// openSegmentLocked creates the next segment file, named after the
// LSN its first record will carry.
func (l *Log) openSegmentLocked() error {
	path := segmentName(l.dir, l.nextLSN)
	f, err := l.fs.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Write(segMagic); err != nil {
		// Remove the magic-less file: leaving it would make every
		// retry fail O_EXCL against a name the log still wants.
		_ = f.Close()
		_ = l.fs.Remove(path)
		return fmt.Errorf("wal: %w", err)
	}
	if !l.opts.NoSync {
		// The new file's directory entry must survive power loss too.
		if err := l.fs.SyncDir(l.dir); err != nil {
			_ = f.Close()
			_ = l.fs.Remove(path)
			return fmt.Errorf("wal: %w", err)
		}
	}
	l.active = f
	l.activeInfo = SegmentInfo{Path: path, Bytes: int64(len(segMagic))}
	return nil
}

// Rotate seals the active segment (a no-op when it holds no records),
// so a compactor can fold everything appended so far. The next append
// starts a fresh segment.
func (l *Log) Rotate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.rotateLocked()
}

func (l *Log) rotateLocked() error {
	if l.active == nil {
		return nil
	}
	if l.activeInfo.Records == 0 {
		return nil
	}
	if err := l.active.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	if err := l.active.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.sealed = append(l.sealed, l.activeInfo)
	l.active = nil
	l.activeInfo = SegmentInfo{}
	return nil
}

// Sealed returns the sealed segments in LSN order. The slice is a
// copy; the infos are stable (sealed segments never change).
func (l *Log) Sealed() []SegmentInfo {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SegmentInfo, len(l.sealed))
	copy(out, l.sealed)
	return out
}

// NextLSN returns the LSN the next appended record will carry.
func (l *Log) NextLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// Broken reports whether a failed append could not be rolled back, in
// which case the log refuses further appends: the failed record's
// durability is indeterminate (it may or may not survive a crash),
// and accepting more appends could put a duplicate LSN on disk.
func (l *Log) Broken() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.broken
}

// Prune deletes sealed segments whose every record has LSN <= upTo —
// the segments a checkpoint covering upTo supersedes. It returns the
// number of segments removed. The active segment is never touched.
func (l *Log) Prune(upTo uint64) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	removed := 0
	for len(l.sealed) > 0 && l.sealed[0].Last <= upTo {
		if err := l.fs.Remove(l.sealed[0].Path); err != nil {
			return removed, fmt.Errorf("wal: prune: %w", err)
		}
		l.sealed = l.sealed[1:]
		removed++
	}
	return removed, nil
}

// Replay streams every durable record with LSN > after, in LSN order,
// to fn. A callback returning ErrStopReplay halts the replay without
// error; any other callback error aborts it. Replay verifies LSN
// continuity: a gap — a sealed segment torn in the middle of the log,
// or records missing below the first segment — is corruption a crash
// cannot produce, and is reported rather than silently skipped. A
// torn tail on the final segment ends the replay cleanly.
func (l *Log) Replay(after uint64, fn func(Record) error) error {
	return l.ReplayRange(after, 0, fn)
}

// ReplayRange is Replay bounded above: records with LSN > upTo are
// not delivered and segments that start past the bound are never
// opened (upTo 0 means unbounded). A compactor folding only the
// sealed prefix passes its target so the live active segment — which
// a concurrent writer is appending to — is not scanned at all.
func (l *Log) ReplayRange(after, upTo uint64, fn func(Record) error) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	segs := make([]SegmentInfo, len(l.sealed), len(l.sealed)+1)
	copy(segs, l.sealed)
	if l.active != nil && l.activeInfo.Records > 0 {
		segs = append(segs, l.activeInfo)
	}
	l.mu.Unlock()

	var expect uint64
	for _, seg := range segs {
		if upTo > 0 && seg.First > upTo {
			break
		}
		f, err := vfs.Open(l.fs, seg.Path)
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		_, err = ScanSegment(f, func(rec Record) error {
			if expect == 0 {
				if rec.LSN > after+1 {
					return fmt.Errorf("wal: log starts at LSN %d but records after %d are needed (pruned or lost segment)", rec.LSN, after)
				}
			} else if rec.LSN != expect {
				return fmt.Errorf("wal: LSN gap: read %d, want %d (corrupt segment %s)", rec.LSN, expect, seg.Path)
			}
			expect = rec.LSN + 1
			if rec.LSN <= after {
				return nil
			}
			if upTo > 0 && rec.LSN > upTo {
				return ErrStopReplay
			}
			return fn(rec)
		})
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("wal: %w", cerr)
		}
		if err == ErrStopReplay {
			return nil
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Sync flushes the active segment to stable storage (useful with
// Options.NoSync to sync at batch boundaries).
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.active == nil {
		return nil
	}
	if err := l.active.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	l.syncs.Add(1)
	return nil
}

// Syncs returns the number of successful fsyncs the log has issued on
// its append path (AppendBatch groups and explicit Sync calls). With
// group commit, acked-records/Syncs is the batching efficiency; the
// benchmark suite reports it.
func (l *Log) Syncs() uint64 { return l.syncs.Load() }

// Close syncs and closes the active segment. Further operations
// return ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.active == nil {
		return nil
	}
	if err := l.active.Sync(); err != nil {
		_ = l.active.Close()
		return fmt.Errorf("wal: sync: %w", err)
	}
	if err := l.active.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.active = nil
	return nil
}

// scanSegmentFile scans one segment file into a SegmentInfo.
func scanSegmentFile(fsys vfs.FS, path string) (SegmentInfo, error) {
	info := SegmentInfo{Path: path}
	f, err := vfs.Open(fsys, path)
	if err != nil {
		return info, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	info.Bytes, err = ScanSegment(f, func(rec Record) error {
		if info.Records == 0 {
			info.First = rec.LSN
		}
		info.Last = rec.LSN
		info.Records++
		return nil
	})
	if err != nil {
		return info, err
	}
	return info, nil
}

// ScanSegment reads a segment byte stream, invoking fn (which may be
// nil) for every complete record, and returns the byte offset of the
// end of the readable prefix — the truncation point that removes a
// torn tail. Corruption never yields an error: a missing magic, an
// implausible length, incomplete bytes, or a CRC mismatch simply ends
// the prefix, exactly the "stop at the torn tail" recovery rule. The
// returned error is fn's, or a real I/O failure of r.
func ScanSegment(r io.Reader, fn func(Record) error) (int64, error) {
	return scanSegment(r, func(rec Record, _ int64) error {
		if fn == nil {
			return nil
		}
		return fn(rec)
	})
}

// RecordEnds returns the byte offset just past each complete record
// of a segment file — every boundary a kill -9 can leave the file
// truncated at. Offsets are from the file start (magic included). A
// nil fsys reads from the real filesystem.
func RecordEnds(fsys vfs.FS, path string) ([]int64, error) {
	f, err := vfs.Open(vfs.OrOS(fsys), path)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	var ends []int64
	_, err = scanSegment(f, func(_ Record, end int64) error {
		ends = append(ends, end)
		return nil
	})
	return ends, err
}

// scanSegment is the scanner core: fn observes each record together
// with the offset of its end.
func scanSegment(r io.Reader, fn func(Record, int64) error) (int64, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic := make([]byte, len(segMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return 0, nil
		}
		return 0, fmt.Errorf("wal: %w", err)
	}
	if string(magic) != string(segMagic) {
		return 0, nil
	}
	valid := int64(len(segMagic))
	header := make([]byte, frameHeaderLen)
	var body []byte
	for {
		if _, err := io.ReadFull(br, header); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return valid, nil
			}
			return valid, fmt.Errorf("wal: %w", err)
		}
		length := binary.LittleEndian.Uint32(header[0:4])
		crc := binary.LittleEndian.Uint32(header[4:8])
		if length < bodyFixedLen || length > MaxRecordBytes {
			return valid, nil
		}
		if cap(body) < int(length) {
			body = make([]byte, length)
		}
		body = body[:length]
		if _, err := io.ReadFull(br, body); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return valid, nil
			}
			return valid, fmt.Errorf("wal: %w", err)
		}
		if crc32.Checksum(body, castagnoli) != crc {
			return valid, nil
		}
		rec := Record{
			LSN:     binary.LittleEndian.Uint64(body[0:8]),
			Type:    body[8],
			Payload: body[bodyFixedLen:],
		}
		valid += int64(frameHeaderLen) + int64(length)
		if err := fn(rec, valid); err != nil {
			return valid, err
		}
	}
}

// IsSegment reports whether name looks like a segment file name.
func IsSegment(name string) bool {
	return strings.HasSuffix(name, segSuffix)
}
