package wal

import (
	"errors"
	"testing"

	"github.com/pghive/pghive/internal/vfs"
)

// TestRecordEndsInjectedFS pins the vfsio invariant that motivated
// moving RecordEnds onto vfs.FS: the open must flow through the
// injected filesystem, so a MemFS-only log is readable and a planned
// open fault is actually seen.
func TestRecordEndsInjectedFS(t *testing.T) {
	mem := vfs.NewMemFS()
	l, err := Open("wal", Options{FS: mem, SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	const n = 5
	appendN(t, l, n, 0)
	if err := l.Rotate(); err != nil {
		t.Fatalf("rotate: %v", err)
	}
	sealed := l.Sealed()
	if len(sealed) != 1 {
		t.Fatalf("sealed segments = %d, want 1", len(sealed))
	}
	seg := sealed[0].Path
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// The segment exists only inside mem: reading it through the
	// injected FS must work, and each record contributes one boundary.
	ends, err := RecordEnds(mem, seg)
	if err != nil {
		t.Fatalf("RecordEnds(mem): %v", err)
	}
	if len(ends) != n {
		t.Fatalf("RecordEnds(mem) = %d boundaries, want %d", len(ends), n)
	}

	// A nil FS means the real filesystem, where the segment does not
	// exist — proof RecordEnds is not quietly using os.Open.
	if _, err := RecordEnds(nil, seg); err == nil {
		t.Fatal("RecordEnds(nil) on a MemFS-only segment succeeded; the open bypassed the injected FS")
	}

	// And a planned open fault fires, so the fault injector can aim at
	// recovery-time reads too.
	inj := vfs.NewInjectFS(mem, vfs.NewPlan(vfs.Fault{Op: vfs.OpOpen, N: 1}))
	if _, err := RecordEnds(inj, seg); !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("RecordEnds(inject) error = %v, want ErrInjected", err)
	}
}
