package wal

// atomic.go: crash-safe whole-file writes. Checkpoint images (and any
// other persisted artifact) must never be observable half-written — a
// crash mid-write would otherwise leave a truncated, unrestorable
// file at the target path. WriteFileAtomic stages the content in a
// temporary file in the same directory, fsyncs it, and renames it
// into place; rename within a directory is atomic on POSIX
// filesystems, so readers see either the old file or the complete new
// one, never a prefix.

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes the content produced by write to path so
// that a crash at any instant leaves either the previous file or the
// complete new one. The temporary file carries a ".tmp" suffix;
// Open removes leftovers from interrupted writes.
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+"-*"+tmpSuffix)
	if err != nil {
		return fmt.Errorf("wal: atomic write: %w", err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	bw := bufio.NewWriter(tmp)
	if err := write(bw); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("wal: atomic write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("wal: atomic write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("wal: atomic write: %w", err)
	}
	name := tmp.Name()
	tmp = nil // the deferred cleanup no longer owns it
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("wal: atomic write: %w", err)
	}
	return syncDir(dir)
}
