package wal

// atomic.go: crash-safe whole-file writes. Checkpoint images (and any
// other persisted artifact) must never be observable half-written — a
// crash mid-write would otherwise leave a truncated, unrestorable
// file at the target path. The mechanics live in vfs.WriteFileAtomic
// (stage in a same-directory temp file, fsync, rename, fsync the
// directory); this wrapper binds it to the real OS filesystem for
// callers that don't thread a vfs.FS.

import (
	"io"

	"github.com/pghive/pghive/internal/vfs"
)

// WriteFileAtomic writes the content produced by write to path on the
// real filesystem so that a crash at any instant leaves either the
// previous file or the complete new one. The temporary file carries a
// ".tmp" suffix; Open removes leftovers from interrupted writes.
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	return vfs.WriteFileAtomic(vfs.OS, path, write)
}
