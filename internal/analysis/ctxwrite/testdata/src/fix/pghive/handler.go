package pghive

import (
	"context"
	"net/http"
)

// GoodHandler threads the request context, which carries the
// per-request deadline.
func GoodHandler(w http.ResponseWriter, r *http.Request) {
	_ = r.Context().Err()
}

// BadHandler builds a fresh context inside a handler instead of using
// r.Context().
func BadHandler(w http.ResponseWriter, r *http.Request) {
	ctx := context.Background() // want `context\.Background in BadHandler discards the caller's deadline`
	_ = ctx.Err()
}
