// Package pghive seeds context-discipline violations on Service and
// DurableService beside the blessed shim and forwarding idioms.
package pghive

import "context"

type Graph struct{}

type Service struct{}

type DurableService struct{}

// IngestContext forwards ctx — the blessed write-path shape.
func (s *Service) IngestContext(ctx context.Context, key string, g *Graph) error {
	return ctx.Err()
}

// Ingest is the no-context convenience shim: it has no caller context
// to discard, so manufacturing a background context here is blessed.
func (s *Service) Ingest(key string, g *Graph) error {
	return s.IngestContext(context.Background(), key, g)
}

// BadRefresh receives a context and then abandons it for a fresh one.
func (s *Service) BadRefresh(ctx context.Context, key string) error {
	_ = ctx.Err()
	return s.IngestContext(context.Background(), key, nil) // want `context\.Background in BadRefresh discards the caller's deadline`
}

// BadTODO hides the same discard behind context.TODO.
func (s *Service) BadTODO(ctx context.Context, key string) error {
	_ = ctx.Err()
	return s.IngestContext(context.TODO(), key, nil) // want `context\.TODO in BadTODO discards the caller's deadline`
}

// BadIgnored accepts ctx and never looks at it: the caller's deadline
// is decoration.
func (d *DurableService) BadIgnored(ctx context.Context, key string) error { // want `BadIgnored accepts ctx but never uses it`
	return nil
}

// BadOrder buries ctx behind the key.
func (d *DurableService) BadOrder(key string, ctx context.Context) error { // want `BadOrder takes a context\.Context but not as its first parameter`
	return ctx.Err()
}

// BadBlank accepts a context it cannot possibly forward.
func (d *DurableService) BadBlank(_ context.Context, key string) error { // want `BadBlank accepts a context\.Context it cannot forward`
	return nil
}

// helper is unexported: the write-path method contract applies to the
// exported API surface only.
func (s *Service) helper(ctx context.Context, key string) error {
	return nil
}

// Other is not a serving type; its methods carry no ctx contract.
type Other struct{}

// Process leaves ctx unused on a non-serving type — unflagged.
func (o *Other) Process(ctx context.Context, key string) error {
	return nil
}
