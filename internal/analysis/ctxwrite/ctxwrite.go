// Package ctxwrite enforces the context discipline PR 7 introduced on
// the write paths: deadlines must propagate, not evaporate. Three
// rules, all mechanical:
//
//  1. A function that receives a context.Context must not manufacture
//     a fresh one with context.Background() or context.TODO() — doing
//     so silently discards the caller's deadline or cancellation.
//  2. An HTTP handler (any function with an *http.Request parameter)
//     must likewise never call Background/TODO: the request context
//     (r.Context()) is the one the admission gate installed the
//     per-request deadline on.
//  3. An exported method on Service or DurableService that takes a
//     context.Context must take it as the first parameter, give it a
//     real name, and actually use it — an accepted-but-ignored ctx is
//     a deadline that looks honored and is not.
//
// The convenience shims without a ctx parameter (Ingest calling
// IngestContext(context.Background(), …)) are the blessed idiom and
// stay unflagged: they have no caller context to discard.
package ctxwrite

import (
	"go/ast"
	"go/types"

	"github.com/pghive/pghive/internal/analysis"
)

// Analyzer enforces context propagation on write paths and handlers.
var Analyzer = &analysis.Analyzer{
	Name: "ctxwrite",
	Doc: "write-path methods and HTTP handlers must forward the caller's context.Context, " +
		"never replace it with context.Background()/TODO() or accept it unused",
	Run: run,
}

// ctxReceivers are the serving types whose exported methods carry the
// write-path context contract.
var ctxReceivers = map[string]bool{"Service": true, "DurableService": true}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ctxParams := contextParams(pass, fd)
			if len(ctxParams) > 0 || hasRequestParam(pass, fd) {
				checkNoFreshContext(pass, fd)
			}
			checkServiceMethod(pass, fd, ctxParams)
		}
	}
	return nil
}

// contextParams returns the identifiers of fd's context.Context
// parameters (including ones named _, whose Defs entry is absent —
// represented by the ident itself).
func contextParams(pass *analysis.Pass, fd *ast.FuncDecl) []*ast.Ident {
	var out []*ast.Ident
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok || !analysis.IsNamedType(tv.Type, "context", "Context") {
			continue
		}
		out = append(out, field.Names...)
		if len(field.Names) == 0 {
			// Unnamed parameter: impossible to forward, flagged by the
			// service-method rule via a nil entry.
			out = append(out, nil)
		}
	}
	return out
}

// hasRequestParam reports whether fd takes an *http.Request — the
// handler signature.
func hasRequestParam(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if ok && analysis.IsNamedType(tv.Type, "net/http", "Request") {
			return true
		}
	}
	return false
}

// checkNoFreshContext flags context.Background()/TODO() calls inside
// a function that already has a context to forward.
func checkNoFreshContext(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if pkg, name := pass.CalleePkgFunc(call); pkg == "context" && (name == "Background" || name == "TODO") {
			pass.Reportf(call.Pos(), "context.%s in %s discards the caller's deadline/cancellation; forward the context the function already receives (handlers: r.Context())", name, fd.Name.Name)
		}
		return true
	})
}

// checkServiceMethod applies the exported write-path method contract:
// ctx first, named, used.
func checkServiceMethod(pass *analysis.Pass, fd *ast.FuncDecl, ctxParams []*ast.Ident) {
	if fd.Recv == nil || !fd.Name.IsExported() || len(ctxParams) == 0 {
		return
	}
	if !ctxReceivers[receiverTypeName(fd)] {
		return
	}
	first := fd.Type.Params.List[0]
	if tv, ok := pass.TypesInfo.Types[first.Type]; !ok || !analysis.IsNamedType(tv.Type, "context", "Context") {
		pass.Reportf(fd.Name.Pos(), "%s takes a context.Context but not as its first parameter; keep ctx first so call sites read uniformly", fd.Name.Name)
	}
	for _, id := range ctxParams {
		if id == nil || id.Name == "_" {
			pass.Reportf(fd.Name.Pos(), "%s accepts a context.Context it cannot forward (unnamed/blank parameter); name it and propagate it", fd.Name.Name)
			continue
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil || !identUsed(pass, fd.Body, obj) {
			pass.Reportf(id.Pos(), "%s accepts ctx but never uses it: the caller's deadline is silently ignored on a write path", fd.Name.Name)
		}
	}
}

// receiverTypeName unwraps the receiver's named type.
func receiverTypeName(fd *ast.FuncDecl) string {
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// identUsed reports whether obj is referenced anywhere under root.
func identUsed(pass *analysis.Pass, root ast.Node, obj types.Object) bool {
	used := false
	ast.Inspect(root, func(n ast.Node) bool {
		if used {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			used = true
			return false
		}
		return true
	})
	return used
}
