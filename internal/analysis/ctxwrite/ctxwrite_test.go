package ctxwrite_test

import (
	"testing"

	"github.com/pghive/pghive/internal/analysis/analysistest"
	"github.com/pghive/pghive/internal/analysis/ctxwrite"
)

func TestCtxWrite(t *testing.T) {
	analysistest.Run(t, "testdata/src/fix", ctxwrite.Analyzer)
}
