package analysis

// load.go turns `go list` package patterns into parsed, type-checked
// packages without importing golang.org/x/tools/go/packages (the
// module carries no third-party dependencies). The trick is the same
// one the real loader uses: `go list -deps -export -json` makes the
// go command compile every package and hand back the path of its
// export data, and go/importer's ForCompiler accepts a lookup
// function that serves exactly those files. Only the matched packages
// are parsed from source; every import — stdlib and intra-module
// alike — is satisfied from export data, which keeps loading a large
// module fast and entirely offline.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package.
type Package struct {
	// PkgPath is the package's import path.
	PkgPath string
	// Dir is the directory holding the package's sources.
	Dir string
	// Fset is the file set positions resolve through (shared by every
	// package of one Load call).
	Fset *token.FileSet
	// Syntax holds the parsed files (GoFiles only — tests are not
	// analyzed; they are where the blessed idioms are deliberately
	// broken, e.g. direct os use against temp dirs).
	Syntax []*ast.File
	// Types and TypesInfo are the type checker's results.
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPkg is the subset of `go list -json` output Load consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// Load lists patterns in dir (module-aware, like the go command run
// there), parses and type-checks every matched package, and returns
// them in listing order. Dependencies are loaded from export data
// only; a pattern that matches nothing, a listing error, or a type
// error in a matched package fails the load.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"."}
	}
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Dir,Export,GoFiles,DepOnly,Standard,Error", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %w\n%s", patterns, err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listedPkg
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: parse go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("analysis: no packages matched %v", patterns)
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(exp)
	})

	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("analysis: %w", err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: typecheck %s: %w", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			PkgPath:   t.ImportPath,
			Dir:       t.Dir,
			Fset:      fset,
			Syntax:    files,
			Types:     tpkg,
			TypesInfo: info,
		})
	}
	return pkgs, nil
}
