// Package detord guards pghive's bit-identical serialization
// guarantee against Go's randomized map iteration order. In the
// serializer packages, ranging over a map while feeding an io.Writer,
// a strings.Builder, or an accumulating append produces output whose
// order changes run to run — exactly what the golden-file tests,
// checkpoint byte-stability, and the determinism CI job forbid. The
// blessed idiom collects keys, sorts them, and ranges the sorted
// slice; so a function that calls sort.* (or slices.Sort*) anywhere
// is trusted, and a map range whose body emits output inside a
// sort-free function is flagged.
//
// Scope: internal/serialize, internal/schema, and the checkpoint
// encoder (checkpoint.go in internal/core).
package detord

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/pghive/pghive/internal/analysis"
)

// Analyzer flags map iteration feeding serialized output without a
// sort in the same function.
var Analyzer = &analysis.Analyzer{
	Name: "detord",
	Doc: "range over a map feeding serialized output (io.Writer, strings.Builder, append) " +
		"needs a sort.* in the same function: map order is nondeterministic",
	Run: run,
}

func inScope(pass *analysis.Pass, f *ast.File) bool {
	switch {
	case analysis.PathEndsWith(pass.Pkg.Path(), "internal/serialize"),
		analysis.PathEndsWith(pass.Pkg.Path(), "internal/schema"):
		return true
	case analysis.PathEndsWith(pass.Pkg.Path(), "internal/core") && pass.FileName(f) == "checkpoint.go":
		return true
	}
	return false
}

// writeMethods are the output-emitting method names (io.Writer,
// strings.Builder, bytes.Buffer and friends).
var writeMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true,
	"WriteRune": true, "WriteTo": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if !inScope(pass, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if callsSort(pass, fd.Body) {
				continue
			}
			checkMapRanges(pass, fd)
		}
	}
	return nil
}

// callsSort reports whether body establishes a deterministic order
// anywhere: a call into package sort, or slices.Sort*.
func callsSort(pass *analysis.Pass, body *ast.BlockStmt) bool {
	return analysis.ContainsCall(body, func(call *ast.CallExpr) bool {
		pkg, name := pass.CalleePkgFunc(call)
		return pkg == "sort" || (pkg == "slices" && strings.HasPrefix(name, "Sort"))
	})
}

// checkMapRanges flags every map-typed range statement whose body
// emits output.
func checkMapRanges(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		if op := outputOp(pass, rng.Body); op != "" {
			pass.Reportf(rng.Pos(), "range over map reaches %s with no sort.* in %s: map iteration order is nondeterministic, breaking bit-identical serialization", op, fd.Name.Name)
		}
		return true
	})
}

// outputOp returns a description of the first output-emitting call in
// body ("" when the body emits nothing): an fmt.Fprint*, an io-style
// Write* method, or the accumulating append builtin.
func outputOp(pass *analysis.Pass, body *ast.BlockStmt) string {
	op := ""
	analysis.ContainsCall(body, func(call *ast.CallExpr) bool {
		if pkg, name := pass.CalleePkgFunc(call); pkg == "fmt" && strings.HasPrefix(name, "Fprint") {
			op = "fmt." + name
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && writeMethods[sel.Sel.Name] {
			if s, ok := pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.MethodVal {
				op = sel.Sel.Name
				return true
			}
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
			if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
				op = "append"
				return true
			}
		}
		return false
	})
	return op
}
