package detord_test

import (
	"testing"

	"github.com/pghive/pghive/internal/analysis/analysistest"
	"github.com/pghive/pghive/internal/analysis/detord"
)

func TestDetOrd(t *testing.T) {
	analysistest.Run(t, "testdata/src/fix", detord.Analyzer)
}
