// Package serialize seeds determinism violations beside the blessed
// collect-sort-range idiom (in detord scope by path).
package serialize

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// BadRender writes properties in map order — different bytes every
// run.
func BadRender(w io.Writer, props map[string]string) {
	for k, v := range props { // want `range over map reaches fmt\.Fprintf with no sort`
		fmt.Fprintf(w, "%s: %s\n", k, v)
	}
}

// BadBuild appends keys straight out of map order into the rendered
// list.
func BadBuild(props map[string]int) string {
	var b strings.Builder
	for k := range props { // want `range over map reaches WriteString with no sort`
		b.WriteString(k)
	}
	return b.String()
}

// BadCollect accumulates in map order with no sort anywhere in the
// function.
func BadCollect(props map[string]int) []string {
	var keys []string
	for k := range props { // want `range over map reaches append with no sort`
		keys = append(keys, k)
	}
	return keys
}

// GoodRender collects, sorts, then ranges the slice — the blessed
// idiom; the map range only appends and the sort follows in the same
// function.
func GoodRender(w io.Writer, props map[string]string) {
	keys := make([]string, 0, len(props))
	for k := range props {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s: %s\n", k, v(props, k))
	}
}

func v(m map[string]string, k string) string { return m[k] }

// GoodCount ranges a map without emitting anything — order cannot
// matter.
func GoodCount(props map[string]int) int {
	total := 0
	for _, n := range props {
		total += n
	}
	return total
}
