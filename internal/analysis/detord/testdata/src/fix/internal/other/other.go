// Package other is outside detord's scope: unsorted map output is
// not this package's invariant.
package other

import (
	"fmt"
	"io"
)

func Render(w io.Writer, props map[string]string) {
	for k, v := range props {
		fmt.Fprintf(w, "%s: %s\n", k, v)
	}
}
