// Package analysistest runs an analyzer over a fixture module and
// compares its findings against `// want` comments in the fixture
// sources — the same contract as golang.org/x/tools'
// go/analysis/analysistest, rebuilt on the in-tree framework.
//
// A fixture is a self-contained Go module under the analyzer's
// testdata directory (its own go.mod, stdlib imports only, so loading
// works offline). A line expecting diagnostics carries a comment of
// the form
//
//	os.Open(p) // want `direct os\.Open`
//
// with one or more backquoted (or double-quoted) regular expressions,
// each of which must match a distinct diagnostic reported on that
// line. Every reported diagnostic must be wanted and every want must
// be reported — seeded violations prove the analyzer fires, and the
// blessed idioms in the same fixture prove it stays quiet.
package analysistest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"github.com/pghive/pghive/internal/analysis"
)

// wantRe extracts the expectation list from a comment: everything
// after the `want` keyword.
var wantRe = regexp.MustCompile(`(?:^|\s)want\s+(.*)$`)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run loads the fixture module rooted at dir with the given patterns
// (defaulting to ./...), applies the analyzer, and reports every
// mismatch between its diagnostics and the fixture's want comments as
// a test error.
func Run(t *testing.T, dir string, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(dir, patterns...)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := analysis.RunAnalyzers(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Syntax {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					ws, err := parseWants(c.Text)
					if err != nil {
						pos := pkg.Fset.Position(c.Pos())
						t.Fatalf("%s: %v", pos, err)
					}
					for _, re := range ws {
						pos := pkg.Fset.Position(c.Pos())
						wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}

	for _, d := range diags {
		pos := d.Pkg.Fset.Position(d.Diagnostic.Pos)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Diagnostic.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Diagnostic.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

// parseWants extracts the regexps of one comment's want clause (nil
// when the comment has none).
func parseWants(comment string) ([]*regexp.Regexp, error) {
	text := strings.TrimPrefix(comment, "//")
	m := wantRe.FindStringSubmatch(text)
	if m == nil {
		return nil, nil
	}
	rest := strings.TrimSpace(m[1])
	var out []*regexp.Regexp
	for rest != "" {
		var lit string
		switch rest[0] {
		case '`':
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated want pattern %q", rest)
			}
			lit = rest[1 : 1+end]
			rest = strings.TrimSpace(rest[2+end:])
		case '"':
			// strconv handles escapes; find the closing quote by
			// attempting successively longer prefixes.
			i := 1
			for ; i < len(rest); i++ {
				if rest[i] == '"' && rest[i-1] != '\\' {
					break
				}
			}
			if i == len(rest) {
				return nil, fmt.Errorf("unterminated want pattern %q", rest)
			}
			s, err := strconv.Unquote(rest[:i+1])
			if err != nil {
				return nil, fmt.Errorf("bad want pattern %q: %v", rest[:i+1], err)
			}
			lit = s
			rest = strings.TrimSpace(rest[i+1:])
		default:
			return nil, fmt.Errorf("want patterns must be backquoted or quoted, got %q", rest)
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			return nil, fmt.Errorf("bad want regexp %q: %v", lit, err)
		}
		out = append(out, re)
	}
	return out, nil
}
