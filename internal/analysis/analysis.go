// Package analysis is a miniature, dependency-free mirror of the
// golang.org/x/tools/go/analysis framework: an Analyzer inspects one
// type-checked package and reports position-anchored diagnostics.
//
// The package exists because pghive's invariants — durable-path IO
// must flow through internal/vfs, *Locked helpers run only under the
// write lock, serialized output must not depend on map iteration
// order, write paths must carry context.Context, and the WAL's
// fsync-before-rename discipline — are enforceable mechanically, at
// `go vet` time, instead of by review. The concrete analyzers live in
// the subpackages (vfsio, lockdisc, detord, ctxwrite, walerr) and the
// cmd/pghive-lint driver runs them over the module; the module itself
// carries no third-party dependencies, so the framework is built on
// go/ast + go/types alone, with type information loaded from the
// compiler's export data (see Load).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Analyzer is one invariant checker. Run inspects a single package
// through the Pass and reports findings via Pass.Reportf; a non-nil
// error means the analyzer itself failed (not that the code is bad).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags. By
	// convention it is a short lowercase word (e.g. "vfsio").
	Name string
	// Doc is a one-paragraph description of the invariant the analyzer
	// enforces; the first line is the summary.
	Doc string
	// Run performs the analysis.
	Run func(*Pass) error
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// FileName returns the base name of the file f was parsed from.
func (p *Pass) FileName(f *ast.File) string {
	return filepath.Base(p.Fset.Position(f.Package).Filename)
}

// PathEndsWith reports whether pkgPath ends with the given
// slash-separated suffix on a path-segment boundary, so
// "example.com/m/internal/wal" matches "internal/wal" but
// "example.com/m/notinternal/wal" does not.
func PathEndsWith(pkgPath, suffix string) bool {
	if pkgPath == suffix {
		return true
	}
	return strings.HasSuffix(pkgPath, "/"+suffix)
}

// CalleePkgFunc resolves a call of the form pkg.Fn(...) where pkg is
// an imported package, returning the package's import path and the
// function name. It returns ("", "") for method calls, calls through
// variables, builtins, and conversions.
func (p *Pass) CalleePkgFunc(call *ast.CallExpr) (pkgPath, name string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := p.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}

// MethodRecvType returns the receiver type of a method call (nil when
// call is not a method call). The result follows pointers: a call on
// *T reports T's pointer type as-is so callers can inspect either.
func (p *Pass) MethodRecvType(call *ast.CallExpr) types.Type {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s, ok := p.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return nil
	}
	return s.Recv()
}

// IsNamedType reports whether t (possibly behind a pointer) is the
// named type pkgPath.name.
func IsNamedType(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// CalleeName returns the bare name a call expression invokes — the
// identifier of a direct call, or the selector's field/method name —
// and "" when the callee has neither (e.g. a call of a call).
func CalleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// ContainsCall reports whether any call expression under root
// satisfies pred.
func ContainsCall(root ast.Node, pred func(*ast.CallExpr) bool) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && pred(call) {
			found = true
			return false
		}
		return true
	})
	return found
}

// run executes one analyzer over one loaded package, returning its
// diagnostics in source order.
func run(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Syntax,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		diags:     &diags,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
	}
	return diags, nil
}

// PackageDiagnostic pairs a finding with the package it was found in
// (whose Fset resolves the position).
type PackageDiagnostic struct {
	Analyzer   string
	Pkg        *Package
	Diagnostic Diagnostic
}

// RunAnalyzers applies every analyzer to every package, returning all
// findings sorted by file position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]PackageDiagnostic, error) {
	var out []PackageDiagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			diags, err := run(a, pkg)
			if err != nil {
				return nil, err
			}
			for _, d := range diags {
				out = append(out, PackageDiagnostic{Analyzer: a.Name, Pkg: pkg, Diagnostic: d})
			}
		}
	}
	SortDiagnostics(out)
	return out, nil
}

// SortDiagnostics orders findings by file name, then offset, then
// analyzer name — the stable order the driver prints and tests assert.
func SortDiagnostics(ds []PackageDiagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		pi := ds[i].Pkg.Fset.Position(ds[i].Diagnostic.Pos)
		pj := ds[j].Pkg.Fset.Position(ds[j].Diagnostic.Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Offset != pj.Offset {
			return pi.Offset < pj.Offset
		}
		return ds[i].Analyzer < ds[j].Analyzer
	})
}
