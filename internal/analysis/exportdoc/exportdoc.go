// Package exportdoc enforces the documentation contract on the
// module's exported API: every exported top-level symbol — function,
// method on an exported type, type, constant, variable — carries a
// doc comment, and function/type docs lead with the symbol's name in
// the godoc convention, so `go doc` renders a sentence rather than a
// fragment.
//
// The rule exists because the replication and durability surface
// (package store, package client, the Durable/Follower API) is
// contract-heavy: which methods are safe for concurrent use, what an
// acked write survives, what a follower refuses. Those contracts live
// in doc comments, and an undocumented export is a contract nobody
// wrote down. Test files and package main are exempt (a command's
// exports are not an API), as are methods on unexported types, and —
// following the convention of documenting the interface rather than
// every implementation — methods that satisfy an exported interface
// declared in the same package, the builtin error interface, or
// fmt.Stringer.
package exportdoc

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/pghive/pghive/internal/analysis"
)

// Analyzer enforces doc comments on exported symbols.
var Analyzer = &analysis.Analyzer{
	Name: "exportdoc",
	Doc: "every exported symbol must carry a doc comment, name-leading for funcs and types, " +
		"so the API's concurrency and durability contracts are written down where godoc shows them",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.FileName(f), "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				checkFunc(pass, d)
			case *ast.GenDecl:
				checkGen(pass, d)
			}
		}
	}
	return nil
}

// checkFunc applies the rule to a function or method declaration.
func checkFunc(pass *analysis.Pass, d *ast.FuncDecl) {
	if !d.Name.IsExported() {
		return
	}
	kind := "function"
	if d.Recv != nil {
		kind = "method"
		if !exportedReceiver(d) {
			return // methods on unexported types are not API surface
		}
		if implementsInterface(pass, d) {
			return // the interface's doc is the contract
		}
	}
	checkNamedDoc(pass, d.Name, d.Doc, kind)
}

// implementsInterface reports whether the method satisfies a
// same-name method of an exported interface declared in this package,
// the builtin error interface, or fmt.Stringer — the cases where
// convention puts the doc on the interface, not each implementation.
func implementsInterface(pass *analysis.Pass, d *ast.FuncDecl) bool {
	fn, ok := pass.TypesInfo.Defs[d.Name].(*types.Func)
	if ok {
		sig := fn.Type().(*types.Signature)
		switch d.Name.Name {
		case "Error", "String":
			// error's Error and fmt.Stringer's String: () string.
			if sig.Params().Len() == 0 && sig.Results().Len() == 1 &&
				types.Identical(sig.Results().At(0).Type(), types.Typ[types.String]) {
				return true
			}
		case "Unwrap":
			// The errors.Unwrap convention: () error.
			if sig.Params().Len() == 0 && sig.Results().Len() == 1 &&
				types.Identical(sig.Results().At(0).Type(), types.Universe.Lookup("error").Type()) {
				return true
			}
		}
		recv := sig.Recv().Type()
		scope := pass.Pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || !tn.Exported() {
				continue
			}
			iface, ok := tn.Type().Underlying().(*types.Interface)
			if !ok || !hasMethod(iface, d.Name.Name) {
				continue
			}
			if types.Implements(recv, iface) || types.Implements(types.NewPointer(recv), iface) {
				return true
			}
		}
	}
	return false
}

func hasMethod(iface *types.Interface, name string) bool {
	for i := 0; i < iface.NumMethods(); i++ {
		if iface.Method(i).Name() == name {
			return true
		}
	}
	return false
}

// checkGen applies the rule to a type/const/var declaration. A spec
// inside a grouped const or var block may be covered by the group's
// doc comment (the usual idiom for enumerations and sentinel sets);
// types always document each spec and lead with the name.
func checkGen(pass *analysis.Pass, d *ast.GenDecl) {
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			doc := s.Doc
			if doc == nil && len(d.Specs) == 1 {
				doc = d.Doc
			}
			checkNamedDoc(pass, s.Name, doc, "type")
		case *ast.ValueSpec:
			// A trailing line comment documents a spec only inside a
			// grouped block, where it is the enumeration idiom godoc
			// renders; a standalone decl needs a leading doc comment.
			covered := s.Doc != nil || d.Doc != nil || (d.Lparen.IsValid() && s.Comment != nil)
			for _, name := range s.Names {
				if !name.IsExported() {
					continue
				}
				if !covered {
					pass.Reportf(name.Pos(), "exported %s %s has no doc comment (neither its own nor its group's); document what it means and when it applies", kindOf(d), name.Name)
				}
			}
		}
	}
}

func kindOf(d *ast.GenDecl) string {
	if d.Tok.String() == "const" {
		return "constant"
	}
	return "variable"
}

// checkNamedDoc requires a non-empty doc comment whose first word is
// the symbol's name (after an optional leading article), the form
// godoc and doc links rely on.
func checkNamedDoc(pass *analysis.Pass, name *ast.Ident, doc *ast.CommentGroup, kind string) {
	text := ""
	if doc != nil {
		text = strings.TrimSpace(doc.Text())
	}
	if text == "" {
		pass.Reportf(name.Pos(), "exported %s %s has no doc comment; write the contract down where godoc shows it", kind, name.Name)
		return
	}
	for _, article := range []string{"A ", "An ", "The "} {
		if strings.HasPrefix(text, article) {
			text = text[len(article):]
			break
		}
	}
	first, _, _ := strings.Cut(text, " ")
	if strings.TrimRight(first, ".,:;") != name.Name {
		pass.Reportf(name.Pos(), "doc comment for %s %s should lead with the symbol name (got %q); name-leading docs keep `go doc %s` readable", kind, name.Name, first, name.Name)
	}
}

// exportedReceiver reports whether the method's receiver names an
// exported type.
func exportedReceiver(d *ast.FuncDecl) bool {
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver T[P]
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.IsExported()
	}
	return false
}
