// Command cmd proves package main is exempt: a command's exports are
// not an API surface.
package main

type Undocumented struct{}

func Helper() {}

func main() {}
