// Package pghive seeds export-documentation violations beside the
// blessed idioms: documented symbols, interface implementations, and
// group-documented constants all stay quiet.
package pghive

// Backend is a documented exported interface; implementations of its
// methods inherit this contract and need no doc of their own.
type Backend interface {
	Put(name string, data []byte) error
}

// Store is a documented implementation of Backend.
type Store struct{}

func (s *Store) Put(name string, data []byte) error { return nil } // quiet: implements Backend

func (s *Store) Extra() int { return 0 } // want `exported method Extra has no doc comment`

// Error satisfies the builtin error convention without a doc.
type opError struct{}

func (opError) Error() string { return "" } // quiet: unexported receiver anyway

// StoreError is a documented error type.
type StoreError struct{}

func (*StoreError) Error() string  { return "" }  // quiet: implements error
func (*StoreError) Unwrap() error  { return nil } // quiet: errors.Unwrap convention
func (*StoreError) String() string { return "" }  // quiet: fmt.Stringer convention

type Widget struct{} // want `exported type Widget has no doc comment`

// The Gadget form: an article-leading doc is still name-leading.
type Gadget struct{}

// Creates a widget — a fragment, not a sentence about MakeWidget.
func MakeWidget() *Widget { return nil } // want `doc comment for function MakeWidget should lead with the symbol name`

func UndocumentedFunc() {} // want `exported function UndocumentedFunc has no doc comment`

// Defaults for the store; a group doc covers every name inside.
const (
	DefaultLimit  = 8
	DefaultBudget = 64
)

const LooseEnd = 3 // want `exported constant LooseEnd has no doc comment`

// MaxNameLen caps object names.
var MaxNameLen = 255

var Tuning = 7 // want `exported variable Tuning has no doc comment`

type counter struct{}

func (c *counter) Bump() {} // quiet: method on unexported type
