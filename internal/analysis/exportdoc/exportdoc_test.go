package exportdoc_test

import (
	"testing"

	"github.com/pghive/pghive/internal/analysis/analysistest"
	"github.com/pghive/pghive/internal/analysis/exportdoc"
)

func TestExportDoc(t *testing.T) {
	analysistest.Run(t, "testdata/src/fix", exportdoc.Analyzer)
}
