package walerr_test

import (
	"testing"

	"github.com/pghive/pghive/internal/analysis/analysistest"
	"github.com/pghive/pghive/internal/analysis/walerr"
)

func TestWALErr(t *testing.T) {
	analysistest.Run(t, "testdata/src/fix", walerr.Analyzer)
}
