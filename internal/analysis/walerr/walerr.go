// Package walerr enforces the durability error discipline in the WAL
// and the durable service layer: the errors that matter most on a
// durable path are exactly the ones that arrive late, at Close and
// Sync, or that are made irreversible by Rename.
//
// Rules, scoped to internal/wal packages and durable.go files:
//
//  1. A statement-level x.Close() or x.Sync() whose error result is
//     discarded is flagged. `_ = x.Close()` is the blessed way to
//     acknowledge a best-effort close on an error path, and
//     `defer x.Close()` is accepted as cleanup after the
//     sync-before-close contract has already run.
//  2. Sync errors may never be discarded at all — `_ = x.Sync()` and
//     `defer x.Sync()` are flagged too. A swallowed fsync error is a
//     silent durability violation (the PR 6 torn-write injector exists
//     precisely to catch these).
//  3. A Rename call must be preceded, lexically in the same function,
//     by a Sync or SyncDir call: renaming a file whose bytes are not
//     yet on disk publishes a name for data that can still be lost.
//     (vfs.WriteFileAtomic packages this sequence; code that inlines
//     it must keep the order.)
package walerr

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/pghive/pghive/internal/analysis"
)

// Analyzer enforces Close/Sync error handling and sync-before-rename
// ordering on durable paths.
var Analyzer = &analysis.Analyzer{
	Name: "walerr",
	Doc: "in internal/wal and durable.go, Close/Sync errors may not be silently discarded " +
		"and a Rename must follow a Sync in the same function",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if !inScope(pass, f) {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd)
			}
		}
	}
	return nil
}

// inScope limits walerr to the layers that own durable file handles.
func inScope(pass *analysis.Pass, f *ast.File) bool {
	if analysis.PathEndsWith(pass.Pkg.Path(), "internal/wal") {
		return true
	}
	return pass.FileName(f) == "durable.go"
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	var syncs, renames []token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.ExprStmt:
			if call, ok := stmt.X.(*ast.CallExpr); ok {
				switch closeOrSync(pass, call) {
				case "Close":
					pass.Reportf(call.Pos(), "discarded error from Close on a durable path: buffered WAL bytes can fail to land at Close; check it, or write `_ = x.Close()` on an error path")
				case "Sync":
					pass.Reportf(call.Pos(), "discarded error from Sync on a durable path: a swallowed fsync error is a silent durability violation")
				}
			}
		case *ast.DeferStmt:
			if closeOrSync(pass, stmt.Call) == "Sync" {
				pass.Reportf(stmt.Call.Pos(), "deferred Sync discards its error on a durable path; sync explicitly and check the result")
			}
			// The defer's children are visited below; the deferred
			// Close itself is the blessed cleanup form.
			if closeOrSync(pass, stmt.Call) != "" {
				return false
			}
		case *ast.AssignStmt:
			checkBlankSync(pass, stmt)
		case *ast.CallExpr:
			switch analysis.CalleeName(stmt) {
			case "Sync", "SyncDir":
				syncs = append(syncs, stmt.Pos())
			case "Rename":
				renames = append(renames, stmt.Pos())
			}
		}
		return true
	})
	for _, r := range renames {
		if !hasEarlier(syncs, r) {
			pass.Reportf(r, "Rename of a durable artifact with no preceding Sync in %s: the new name can become visible before its bytes are on disk", fd.Name.Name)
		}
	}
}

// checkBlankSync flags `_ = x.Sync()`: unlike Close, a sync error may
// not even be explicitly discarded.
func checkBlankSync(pass *analysis.Pass, stmt *ast.AssignStmt) {
	if len(stmt.Lhs) != 1 || len(stmt.Rhs) != 1 {
		return
	}
	if id, ok := stmt.Lhs[0].(*ast.Ident); !ok || id.Name != "_" {
		return
	}
	if call, ok := stmt.Rhs[0].(*ast.CallExpr); ok && closeOrSync(pass, call) == "Sync" {
		pass.Reportf(call.Pos(), "Sync's error may not be discarded, even explicitly: a failed fsync means the record is not durable")
	}
}

// closeOrSync classifies call as an error-returning Close or Sync
// method call, or "" otherwise.
func closeOrSync(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	name := sel.Sel.Name
	if name != "Close" && name != "Sync" {
		return ""
	}
	if !returnsError(pass, call) {
		return ""
	}
	return name
}

// returnsError reports whether call's callee has an error as its last
// result — calls with nothing to discard are not discards.
func returnsError(pass *analysis.Pass, call *ast.CallExpr) bool {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok {
		return false
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	named, ok := last.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

// hasEarlier reports whether any position in ps precedes p.
func hasEarlier(ps []token.Pos, p token.Pos) bool {
	for _, q := range ps {
		if q < p {
			return true
		}
	}
	return false
}
