// Package wal seeds durability error-handling violations beside the
// blessed check/acknowledge/defer idioms (in walerr scope by path).
package wal

import "errors"

type file struct{}

func (f *file) Close() error { return nil }
func (f *file) Sync() error  { return nil }
func (f *file) Reset()       {}

type fsys struct{}

func (fsys) Rename(oldpath, newpath string) error { return nil }
func (fsys) SyncDir(dir string) error             { return nil }

// BadClose drops the error where buffered bytes can fail to land.
func BadClose(f *file) {
	f.Close() // want `discarded error from Close on a durable path`
}

// BadSyncStmt drops an fsync error on the floor.
func BadSyncStmt(f *file) {
	f.Sync() // want `discarded error from Sync on a durable path`
}

// BadSyncBlank acknowledges the discard, which is still not allowed
// for Sync.
func BadSyncBlank(f *file) {
	_ = f.Sync() // want `Sync's error may not be discarded, even explicitly`
}

// BadDeferSync defers the sync, silently losing its error.
func BadDeferSync(f *file) {
	defer f.Sync() // want `deferred Sync discards its error`
}

// BadRename publishes a name for bytes that were never synced.
func BadRename(fs fsys, tmp, final string) error {
	return fs.Rename(tmp, final) // want `Rename of a durable artifact with no preceding Sync in BadRename`
}

// GoodClose checks the close error — the required form on the happy
// path.
func GoodClose(f *file) error {
	if err := f.Close(); err != nil {
		return err
	}
	return nil
}

// GoodErrorPath acknowledges a best-effort close while an earlier
// error is already being returned.
func GoodErrorPath(f *file) error {
	_ = f.Close()
	return errors.New("earlier failure")
}

// GoodDeferClose is the blessed cleanup form: the sync-before-close
// contract already ran.
func GoodDeferClose(f *file) error {
	defer f.Close()
	return f.Sync()
}

// GoodRename syncs before renaming, the temp+fsync+rename idiom.
func GoodRename(fs fsys, f *file, tmp, final string) error {
	if err := f.Sync(); err != nil {
		return err
	}
	if err := fs.Rename(tmp, final); err != nil {
		return err
	}
	return fs.SyncDir(".")
}

// GoodVoid discards nothing: Reset has no error result.
func GoodVoid(f *file) {
	f.Reset()
}
