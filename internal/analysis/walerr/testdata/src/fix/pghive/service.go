// service.go is outside walerr scope: only durable.go and
// internal/wal carry the durability error contract.
package pghive

func UnflaggedClose(l *log) {
	l.Close()
}
