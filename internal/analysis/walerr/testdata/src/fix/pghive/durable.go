// durable.go is in walerr scope by file name regardless of package
// path.
package pghive

type log struct{}

func (l *log) Close() error { return nil }
func (l *log) Sync() error  { return nil }

// BadSwap drops the error from closing the outgoing log during a
// swap.
func BadSwap(old, next *log) error {
	old.Close() // want `discarded error from Close on a durable path`
	return next.Sync()
}
