// Package vfsio flags direct os-package filesystem access on pghive's
// durable paths. Everything the durability stack reads or writes —
// WAL segments, checkpoint images, atomic whole-file staging — must
// flow through an internal/vfs filesystem: the fault-injection suite
// (vfs.MemFS, vfs.InjectFS) can only prove crash safety for IO it can
// see, so a direct os.Open or os.Rename silently escapes every
// durability property test the repo runs.
//
// Scope: the internal/wal and internal/runfile packages, durable.go
// in the root package, and checkpoint.go in internal/core. Tests are
// out of scope (they
// legitimately stage real temp dirs), as is internal/vfs itself — the
// one place the os package is supposed to appear.
package vfsio

import (
	"go/ast"
	"go/types"

	"github.com/pghive/pghive/internal/analysis"
)

// Analyzer flags direct os filesystem calls (and os.File use) on
// durable paths that must go through vfs.FS.
var Analyzer = &analysis.Analyzer{
	Name: "vfsio",
	Doc: "flag direct os filesystem IO on durable paths; route it through vfs.FS " +
		"so fault injection (vfs.MemFS / vfs.InjectFS) covers it",
	Run: run,
}

// osFSFuncs are the os package functions that touch the filesystem
// namespace or file contents — the operations vfs.FS abstracts.
var osFSFuncs = map[string]bool{
	"Open": true, "Create": true, "OpenFile": true, "CreateTemp": true,
	"Rename": true, "Remove": true, "RemoveAll": true,
	"WriteFile": true, "ReadFile": true, "ReadDir": true,
	"Mkdir": true, "MkdirAll": true, "Truncate": true, "Stat": true,
}

// inScope reports whether file f of pass's package is a durable path.
func inScope(pass *analysis.Pass, f *ast.File) bool {
	switch {
	case analysis.PathEndsWith(pass.Pkg.Path(), "internal/wal"):
		return true
	case analysis.PathEndsWith(pass.Pkg.Path(), "internal/runfile"):
		return true
	case pass.FileName(f) == "durable.go":
		return true
	case analysis.PathEndsWith(pass.Pkg.Path(), "internal/core") && pass.FileName(f) == "checkpoint.go":
		return true
	}
	return false
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if !inScope(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if pkg, name := pass.CalleePkgFunc(n); pkg == "os" && osFSFuncs[name] {
					pass.Reportf(n.Pos(), "direct os.%s on a durable path bypasses vfs.FS (fault injection cannot see it); use the configured filesystem", name)
				}
				if recv := pass.MethodRecvType(n); recv != nil && analysis.IsNamedType(recv, "os", "File") {
					pass.Reportf(n.Pos(), "method call on *os.File on a durable path bypasses vfs.File; open the file through the configured vfs.FS")
				}
			case *ast.ValueSpec:
				for _, id := range n.Names {
					reportOSFileDef(pass, id)
				}
			case *ast.Field:
				for _, id := range n.Names {
					reportOSFileDef(pass, id)
				}
			}
			return true
		})
	}
	return nil
}

// reportOSFileDef flags a declared variable, parameter, or struct
// field of type os.File / *os.File.
func reportOSFileDef(pass *analysis.Pass, id *ast.Ident) {
	obj := pass.TypesInfo.Defs[id]
	if obj == nil {
		return
	}
	t := obj.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if analysis.IsNamedType(t, "os", "File") {
		pass.Reportf(id.Pos(), "%s declared as os.File on a durable path; use vfs.File so fault injection covers its IO", id.Name)
	}
}
