package vfsio_test

import (
	"testing"

	"github.com/pghive/pghive/internal/analysis/analysistest"
	"github.com/pghive/pghive/internal/analysis/vfsio"
)

func TestVFSIO(t *testing.T) {
	analysistest.Run(t, "testdata/src/fix", vfsio.Analyzer)
}
