// Package vfs is a miniature stand-in for pghive's internal/vfs: the
// one place direct os IO is blessed (it is out of vfsio's scope).
package vfs

import (
	"io"
	"io/fs"
	"os"
)

// File mirrors vfs.File.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Sync() error
}

// FS mirrors vfs.FS.
type FS interface {
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
}

// OS is the passthrough filesystem; its os calls are legitimate.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) Rename(o, n string) error { return os.Rename(o, n) }
func (osFS) Remove(name string) error { return os.Remove(name) }
