// Package core's checkpoint.go is in vfsio scope by file name.
package core

import "os"

// BadStageImage stages a checkpoint image with a direct temp file.
func BadStageImage(dir string) error {
	f, err := os.CreateTemp(dir, "*.tmp") // want `direct os\.CreateTemp on a durable path`
	if err != nil {
		return err
	}
	return f.Sync() // want `method call on \*os\.File on a durable path`
}
