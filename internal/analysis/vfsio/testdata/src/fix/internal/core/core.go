package core

import "os"

// ReadInput is discovery-pipeline code, not checkpoint IO: core.go is
// out of vfsio's scope, so direct os use is fine here.
func ReadInput(path string) ([]byte, error) {
	return os.ReadFile(path)
}
