// Package wal seeds vfsio violations beside the blessed vfs idiom.
package wal

import (
	"os"

	"example.com/fix/vfs"
)

// Log carries the configured filesystem, like the real WAL.
type Log struct {
	fs vfs.FS
}

// BadOpen reads a segment with the os package directly.
func BadOpen(path string) error {
	f, err := os.Open(path) // want `direct os\.Open on a durable path`
	if err != nil {
		return err
	}
	return f.Close() // want `method call on \*os\.File on a durable path`
}

// BadRename renames a durable artifact without the vfs.
func (l *Log) BadRename(oldp, newp string) error {
	return os.Rename(oldp, newp) // want `direct os\.Rename on a durable path`
}

// BadStage writes a whole file with os helpers.
func BadStage(path string, data []byte) error {
	if err := os.WriteFile(path, data, 0o644); err != nil { // want `direct os\.WriteFile on a durable path`
		return err
	}
	return os.Remove(path) // want `direct os\.Remove on a durable path`
}

// BadHandle declares a raw os.File field on log state.
type BadHandle struct {
	active *os.File // want `active declared as os\.File on a durable path`
}

// GoodOpen routes the same operation through the configured vfs.FS —
// the blessed idiom: os appears only for the flag constants.
func (l *Log) GoodOpen(path string) error {
	f, err := l.fs.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return err
	}
	return f.Close()
}

// GoodRename goes through the vfs too.
func (l *Log) GoodRename(oldp, newp string) error {
	return l.fs.Rename(oldp, newp)
}
