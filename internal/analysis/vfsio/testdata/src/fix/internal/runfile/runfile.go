// Package runfile is in vfsio scope as a whole: every run and
// manifest byte must be writable through an injected filesystem.
package runfile

import (
	"os"

	"example.com/fix/vfs"
)

// BadWriteRun stages a delta run with the os package directly.
func BadWriteRun(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want `direct os\.WriteFile on a durable path`
}

// BadListManifests globs the data directory without the vfs.
func BadListManifests(dir string) error {
	_, err := os.ReadDir(dir) // want `direct os\.ReadDir on a durable path`
	return err
}

// GoodWriteRun routes the same IO through the configured vfs.FS.
func GoodWriteRun(fsys vfs.FS, path string, data []byte) error {
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
