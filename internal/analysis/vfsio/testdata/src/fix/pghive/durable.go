// Package pghive's durable.go is in vfsio scope by file name.
package pghive

import "os"

// BadCheckpointRead opens a checkpoint image without the vfs.
func BadCheckpointRead(path string) ([]byte, error) {
	return os.ReadFile(path) // want `direct os\.ReadFile on a durable path`
}
