package pghive

import "os"

// Hostname is not durable-path code (service.go is out of vfsio's
// file scope), so direct os use stays unflagged here.
func Hostname() string {
	h, err := os.Hostname()
	if err != nil {
		return ""
	}
	if _, err := os.Stat(h); err == nil {
		return h
	}
	return h
}
