package lockdisc_test

import (
	"testing"

	"github.com/pghive/pghive/internal/analysis/analysistest"
	"github.com/pghive/pghive/internal/analysis/lockdisc"
)

func TestLockDisc(t *testing.T) {
	analysistest.Run(t, "testdata/src/fix", lockdisc.Analyzer)
}
