// Package lockdisc enforces pghive's write-lock discipline. The
// serving layer names its lock-requiring helpers with a Locked suffix
// (ingestLocked, rotateLocked, failFastLocked, …): the name is a
// contract that the caller holds the write lock. This analyzer makes
// the contract mechanical: a *Locked function may only be used inside
// a function that is itself *Locked or that visibly acquires a write
// lock (a Lock() or LockContext() call anywhere in its body, function
// literals included — the sync.Once.Do(func(){ mu.Lock(); … }) idiom
// counts). References count as uses too, so passing d.applyRecordLocked
// as a replay callback from an unlocked function is flagged.
//
// It also guards snapshot publication: the copy-on-publish snapshot
// must be swapped in through an atomic.Pointer Store, never written
// to a plain field — a direct `x.snap = …` assignment is flagged
// wherever it appears in scope.
//
// Scope: the root pghive package (service.go, durable.go), and the
// internal/wal, internal/vfs, internal/core packages.
package lockdisc

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/pghive/pghive/internal/analysis"
)

// Analyzer enforces the *Locked-suffix lock discipline and the
// atomic-pointer snapshot-publication rule.
var Analyzer = &analysis.Analyzer{
	Name: "lockdisc",
	Doc: "uses of *Locked helpers must occur in functions that hold the write lock " +
		"(or are *Locked themselves); snapshots publish via atomic.Pointer.Store, never a field write",
	Run: run,
}

func inScope(pass *analysis.Pass) bool {
	if pass.Pkg.Name() == "pghive" {
		return true
	}
	for _, suffix := range []string{"internal/wal", "internal/vfs", "internal/core"} {
		if analysis.PathEndsWith(pass.Pkg.Path(), suffix) {
			return true
		}
	}
	return false
}

// snapshotFields are the field names the publication rule guards.
var snapshotFields = map[string]bool{"snap": true, "snapshot": true}

func run(pass *analysis.Pass) error {
	if !inScope(pass) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkSnapshotWrites(pass, fd)
			if strings.HasSuffix(fd.Name.Name, "Locked") || acquiresWriteLock(fd.Body) {
				continue
			}
			checkLockedUses(pass, fd)
		}
	}
	return nil
}

// acquiresWriteLock reports whether body lexically contains a write
// lock acquisition — a call to anything named Lock or LockContext.
// Function literals count: the lock conventionally outlives them.
func acquiresWriteLock(body *ast.BlockStmt) bool {
	return analysis.ContainsCall(body, func(call *ast.CallExpr) bool {
		name := analysis.CalleeName(call)
		return name == "Lock" || name == "LockContext"
	})
}

// checkLockedUses reports every use (call or reference) of a *Locked
// function inside a function that neither holds the lock nor carries
// the suffix itself.
func checkLockedUses(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.TypesInfo.Uses[id].(*types.Func)
		if !ok || !strings.HasSuffix(obj.Name(), "Locked") {
			return true
		}
		pass.Reportf(id.Pos(), "use of %s in %s, which neither holds the write lock (no Lock/LockContext call) nor has the Locked suffix", obj.Name(), fd.Name.Name)
		return true
	})
}

// checkSnapshotWrites flags direct assignments to a snapshot field;
// publication must go through the atomic.Pointer swap.
func checkSnapshotWrites(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			sel, ok := lhs.(*ast.SelectorExpr)
			if !ok || !snapshotFields[sel.Sel.Name] {
				continue
			}
			if s, ok := pass.TypesInfo.Selections[sel]; !ok || s.Kind() != types.FieldVal {
				continue
			}
			pass.Reportf(sel.Pos(), "direct write to snapshot field %s: readers are lock-free, so publication must go through the atomic.Pointer Store swap", sel.Sel.Name)
		}
		return true
	})
}
