// Package pghive seeds lock-discipline violations beside the blessed
// idioms (in lockdisc scope by package name).
package pghive

import (
	"context"
	"sync"
	"sync/atomic"
)

// Snapshot is an immutable published state.
type Snapshot struct{ N int }

// Service mirrors the real service's locking shape.
type Service struct {
	mu   sync.Mutex
	once sync.Once
	n    int
	snap atomic.Pointer[Snapshot]
}

// lockCtx mirrors the channel-based writeLock.
type lockCtx chan struct{}

func (l lockCtx) LockContext(ctx context.Context) error {
	select {
	case l <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
func (l lockCtx) Unlock() { <-l }

// ingestLocked requires the write lock, by name.
func (s *Service) ingestLocked() { s.n++ }

// publishLocked swaps the snapshot in — the blessed publication path.
func (s *Service) publishLocked() {
	s.snap.Store(&Snapshot{N: s.n})
}

// GoodIngest acquires the lock before calling the helper.
func (s *Service) GoodIngest() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ingestLocked()
	s.publishLocked()
}

// GoodIngestContext acquires via LockContext, the deadline-bounded
// acquisition path.
func (s *Service) GoodIngestContext(ctx context.Context, l lockCtx) error {
	if err := l.LockContext(ctx); err != nil {
		return err
	}
	defer l.Unlock()
	s.ingestLocked()
	return nil
}

// drainLocked is itself *Locked, so calling deeper helpers is fine.
func (s *Service) drainLocked() {
	s.ingestLocked()
	s.publishLocked()
}

// GoodOnce locks inside a function literal — the sync.Once.Do close
// idiom; the lexical body still contains the acquisition.
func (s *Service) GoodOnce() {
	s.once.Do(func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.ingestLocked()
	})
}

// BadIngest calls a *Locked helper with no lock in sight.
func (s *Service) BadIngest() {
	s.ingestLocked() // want `use of ingestLocked in BadIngest`
}

// BadReference passes a *Locked method as a callback without holding
// the lock — the replay-callback trap.
func (s *Service) BadReference(replay func(func())) {
	replay(s.drainLocked) // want `use of drainLocked in BadReference`
}

// UnsafeService publishes through a plain field — no atomic swap.
type UnsafeService struct {
	mu   sync.Mutex
	n    int
	snap *Snapshot
}

// BadPublish writes the snapshot field directly; even under the lock
// this races lock-free readers.
func (u *UnsafeService) BadPublish() {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.snap = &Snapshot{N: u.n} // want `direct write to snapshot field snap`
}
