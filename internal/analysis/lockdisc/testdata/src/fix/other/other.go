// Package other is outside lockdisc's scope: the same shapes stay
// unflagged here.
package other

type thing struct{ snap *int }

func helperLocked() {}

func Use(t *thing, v int) {
	helperLocked()
	t.snap = &v
}
