package vectorize

import "github.com/pghive/pghive/internal/pg"

// Interned vectorization: same-shape elements (same label set,
// property-key set, and — for edges — endpoint tokens) produce
// byte-identical representation vectors, so the pipeline vectorizes
// only the first occurrence of each shape and shares the row. The
// ShapeIndex carries the row→shape map used to expand per-row views
// and to broadcast cluster assignments.

// NodesInterned vectorizes only the shape representatives of nodes:
// one matrix row per distinct shape, in first-occurrence order. Row s
// of the result is byte-identical to row si.Reps[s] of the
// non-interned matrix.
func NodesInterned(nodes []pg.Node, si *pg.ShapeIndex, keys []string, emb Embedder, workers int) *Matrix {
	reps := make([]pg.Node, si.NumShapes())
	for s, r := range si.Reps {
		reps[s] = nodes[r]
	}
	return NodesParallel(reps, keys, emb, workers)
}

// EdgesInterned vectorizes only the shape representatives of edges,
// gathering the representatives' endpoint tokens from the per-row
// slices.
func EdgesInterned(edges []pg.Edge, si *pg.ShapeIndex, keys []string, emb Embedder, srcToks, dstToks []string, workers int) *Matrix {
	n := si.NumShapes()
	reps := make([]pg.Edge, n)
	rsrc := make([]string, n)
	rdst := make([]string, n)
	for s, r := range si.Reps {
		reps[s] = edges[r]
		rsrc[s] = srcToks[r]
		rdst[s] = dstToks[r]
	}
	return EdgesParallel(reps, keys, emb, rsrc, rdst, workers)
}

// Expand returns a per-row vector view over representative rows: row i
// of the result aliases repVecs[rows[i]]. It is the reference form of
// the per-row view the interned matrix stands for; the pipeline's
// adaptive parameter estimation indexes through the row→shape map
// directly (lsh.AdaptiveNodeParamsInterned) instead of materializing
// it, and the tests compare against this expansion.
func Expand(repVecs [][]float64, rows []int32) [][]float64 {
	out := make([][]float64, len(rows))
	for i, s := range rows {
		out[i] = repVecs[s]
	}
	return out
}

// sortBits sorts a row's set-bit positions ascending. Per-row bit
// counts are small, where insertion sort beats sort.Slice and
// allocates nothing.
func sortBits(bits []int32) {
	for i := 1; i < len(bits); i++ {
		for j := i; j > 0 && bits[j] < bits[j-1]; j-- {
			bits[j], bits[j-1] = bits[j-1], bits[j]
		}
	}
}
