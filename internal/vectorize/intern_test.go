package vectorize

import (
	"math/rand"
	"testing"

	"github.com/pghive/pghive/internal/pg"
	"github.com/pghive/pghive/internal/word2vec"
)

// randShapedNodes builds a duplicate-heavy node slice: few label/key
// combinations, varying values.
func randShapedNodes(rng *rand.Rand, n int) ([]pg.Node, *pg.ShapeIndex) {
	labels := [][]string{{"Person"}, {"Post"}, {"Org", "Company"}, nil}
	keySets := [][]string{{"name"}, {"name", "age"}, {"title"}, nil}
	g := pg.NewGraph()
	for i := 0; i < n; i++ {
		props := map[string]pg.Value{}
		for _, k := range keySets[rng.Intn(len(keySets))] {
			props[k] = pg.Int(int64(rng.Intn(1000)))
		}
		g.AddNode(labels[rng.Intn(len(labels))], props)
	}
	nodes := g.Nodes()
	return nodes, pg.NewShapeCache().IndexNodes(nodes)
}

// TestNodesInternedMatchesRepresentativeRows: row s of the interned
// matrix is byte-identical to row Reps[s] of the full matrix, and the
// expanded view reproduces every row.
func TestNodesInternedMatchesRepresentativeRows(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	nodes, si := randShapedNodes(rng, 200)
	keys := []string{"age", "name", "title"}
	emb := word2vec.NewHashedEmbedder(8)

	full := NodesParallel(nodes, keys, emb, 1)
	interned := NodesInterned(nodes, si, keys, emb, 1)
	if interned.Rows() != si.NumShapes() {
		t.Fatalf("interned rows = %d, want %d", interned.Rows(), si.NumShapes())
	}
	if interned.BinStart != full.BinStart {
		t.Fatalf("BinStart mismatch: %d vs %d", interned.BinStart, full.BinStart)
	}
	for s, r := range si.Reps {
		if len(interned.Vecs[s]) != len(full.Vecs[r]) {
			t.Fatalf("shape %d: width mismatch", s)
		}
		for j := range interned.Vecs[s] {
			if interned.Vecs[s][j] != full.Vecs[r][j] {
				t.Fatalf("shape %d: vec[%d] differs", s, j)
			}
		}
		if len(interned.Bits[s]) != len(full.Bits[r]) {
			t.Fatalf("shape %d: bits differ", s)
		}
	}
	view := Expand(interned.Vecs, si.Rows)
	for i := range nodes {
		for j := range view[i] {
			if view[i][j] != full.Vecs[i][j] {
				t.Fatalf("expanded row %d differs at %d", i, j)
			}
		}
	}
}

// TestBitsSortedAndConsistent: Bits lists exactly the set positions of
// the binary block, ascending.
func TestBitsSortedAndConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	nodes, _ := randShapedNodes(rng, 100)
	keys := []string{"age", "name", "title"}
	m := NodesParallel(nodes, keys, word2vec.NewHashedEmbedder(6), 2)
	for i, row := range m.Vecs {
		var want []int32
		for j := m.BinStart; j < len(row); j++ {
			if row[j] != 0 {
				want = append(want, int32(j-m.BinStart))
			}
		}
		got := m.Bits[i]
		if len(got) != len(want) {
			t.Fatalf("row %d: bits %v, want %v", i, got, want)
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("row %d: bits %v, want %v (must be ascending)", i, got, want)
			}
		}
	}
}

// TestEdgesInternedMatchesRepresentativeRows mirrors the node test for
// the 3-embedding edge layout.
func TestEdgesInternedMatchesRepresentativeRows(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := pg.NewGraph()
	var ids []pg.ID
	for i := 0; i < 20; i++ {
		ids = append(ids, g.AddNode([]string{"N"}, nil))
	}
	for i := 0; i < 150; i++ {
		props := map[string]pg.Value{}
		if i%3 == 0 {
			props["w"] = pg.Int(int64(i))
		}
		if _, err := g.AddEdge([]string{"R"}, ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))], props); err != nil {
			t.Fatal(err)
		}
	}
	edges := g.Edges()
	srcToks := make([]string, len(edges))
	dstToks := make([]string, len(edges))
	for i := range edges {
		srcToks[i], dstToks[i] = "N", "N"
	}
	si := pg.NewShapeCache().IndexEdges(edges, srcToks, dstToks)
	keys := []string{"w"}
	emb := word2vec.NewHashedEmbedder(8)

	full := EdgesParallel(edges, keys, emb, srcToks, dstToks, 1)
	interned := EdgesInterned(edges, si, keys, emb, srcToks, dstToks, 1)
	if interned.Rows() != si.NumShapes() {
		t.Fatalf("interned rows = %d, want %d", interned.Rows(), si.NumShapes())
	}
	for s, r := range si.Reps {
		for j := range interned.Vecs[s] {
			if interned.Vecs[s][j] != full.Vecs[r][j] {
				t.Fatalf("shape %d: vec[%d] differs", s, j)
			}
		}
	}
}
