package vectorize

import (
	"math"
	"reflect"
	"testing"

	"github.com/pghive/pghive/internal/pg"
	"github.com/pghive/pghive/internal/word2vec"
)

func exampleGraph(t *testing.T) *pg.Graph {
	t.Helper()
	g := pg.NewGraph()
	bob := g.AddNode([]string{"Person"}, map[string]pg.Value{
		"name": pg.Str("Bob"), "gender": pg.Str("male"), "bday": pg.Str("2/5/1980")})
	alice := g.AddNode(nil, map[string]pg.Value{
		"name": pg.Str("Alice"), "gender": pg.Str("female"), "bday": pg.Str("19/12/1999")})
	org := g.AddNode([]string{"Org."}, map[string]pg.Value{
		"url": pg.Str("example.com"), "name": pg.Str("Example")})
	if _, err := g.AddEdge([]string{"WORKS_AT"}, bob, org, map[string]pg.Value{"from": pg.Int(2000)}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge([]string{"KNOWS"}, bob, alice, nil); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNodeVectorLayout(t *testing.T) {
	g := exampleGraph(t)
	emb := word2vec.NewHashedEmbedder(5)
	keys := g.DistinctNodePropertyKeys() // bday, gender, name, url
	m := Nodes(g.Nodes(), keys, emb)
	if m.Rows() != 3 {
		t.Fatalf("rows = %d, want 3", m.Rows())
	}
	if m.Dim() != 5+len(keys) {
		t.Fatalf("dim = %d, want %d", m.Dim(), 5+len(keys))
	}
	// Bob: Person embedding followed by bits for {bday, gender, name}.
	bob := m.Vecs[0]
	wantEmb := emb.Vector("Person")
	if !reflect.DeepEqual(bob[:5], wantEmb) {
		t.Error("label embedding block mismatch for Bob")
	}
	wantBits := []float64{1, 1, 1, 0} // bday, gender, name, url
	if !reflect.DeepEqual(bob[5:], wantBits) {
		t.Errorf("property bits for Bob = %v, want %v", bob[5:], wantBits)
	}
	// Alice is unlabeled: zero embedding block (Example 3), same
	// property bits as Bob.
	alice := m.Vecs[1]
	for i := 0; i < 5; i++ {
		if alice[i] != 0 {
			t.Fatalf("unlabeled node embedding must be zero, got %v", alice[:5])
		}
	}
	if !reflect.DeepEqual(alice[5:], wantBits) {
		t.Errorf("property bits for Alice = %v, want %v", alice[5:], wantBits)
	}
	if m.Tokens[0] != "Person" || m.Tokens[1] != "" || m.Tokens[2] != "Org." {
		t.Errorf("tokens = %v", m.Tokens)
	}
}

func TestEdgeVectorLayout(t *testing.T) {
	g := exampleGraph(t)
	emb := word2vec.NewHashedEmbedder(4)
	keys := g.DistinctEdgePropertyKeys() // from
	m := Edges(g.Edges(), keys, emb, GraphEndpoints(g))
	if m.Rows() != 2 {
		t.Fatalf("rows = %d, want 2", m.Rows())
	}
	if m.Dim() != 3*4+1 {
		t.Fatalf("dim = %d, want 13 (3d+Q)", m.Dim())
	}
	worksAt := m.Vecs[0]
	if !reflect.DeepEqual(worksAt[0:4], emb.Vector("WORKS_AT")) {
		t.Error("edge-label embedding block mismatch")
	}
	if !reflect.DeepEqual(worksAt[4:8], emb.Vector("Person")) {
		t.Error("source-label embedding block mismatch")
	}
	if !reflect.DeepEqual(worksAt[8:12], emb.Vector("Org.")) {
		t.Error("target-label embedding block mismatch")
	}
	if worksAt[12] != 1 {
		t.Error("property bit for `from` should be set")
	}
	// KNOWS targets the unlabeled Alice: target block must be zero.
	knows := m.Vecs[1]
	for i := 8; i < 12; i++ {
		if knows[i] != 0 {
			t.Fatalf("unlabeled endpoint embedding must be zero, got %v", knows[8:12])
		}
	}
	if knows[12] != 0 {
		t.Error("KNOWS has no `from` property")
	}
}

func TestBuildCorpus(t *testing.T) {
	g := exampleGraph(t)
	corpus := BuildCorpus(g)
	if len(corpus) == 0 {
		t.Fatal("corpus must not be empty")
	}
	// The edge sentence [Person WORKS_AT Org.] must be present.
	found := false
	for _, s := range corpus {
		if len(s) == 3 && s[0] == "Person" && s[1] == "WORKS_AT" && s[2] == "Org." {
			found = true
		}
	}
	if !found {
		t.Error("edge sentence [Person WORKS_AT Org.] missing from corpus")
	}
	// No sentence may have fewer than two non-empty tokens.
	for _, s := range corpus {
		nonEmpty := 0
		for _, w := range s {
			if w != "" {
				nonEmpty++
			}
		}
		if nonEmpty < 2 {
			t.Errorf("sentence %v has fewer than 2 usable tokens", s)
		}
	}
}

func TestCorpusDeduplicationIsLogCapped(t *testing.T) {
	g := pg.NewGraph()
	var prev pg.ID = -1
	for i := 0; i < 1024; i++ {
		id := g.AddNode([]string{"A"}, map[string]pg.Value{"p": pg.Int(1)})
		if prev >= 0 {
			if _, err := g.AddEdge([]string{"R"}, prev, id, nil); err != nil {
				t.Fatal(err)
			}
		}
		prev = id
	}
	corpus := BuildCorpus(g)
	// 1024 identical node sentences + 1023 identical edge sentences
	// must collapse to ~log2 multiplicity each, not thousands.
	if len(corpus) > 30 {
		t.Fatalf("corpus size %d; deduplication not applied", len(corpus))
	}
}

func TestTrainEmbedderIntegration(t *testing.T) {
	g := exampleGraph(t)
	m := TrainEmbedder(g, word2vec.Config{Dim: 8, Seed: 1, Epochs: 3})
	if m.Dim() != 8 {
		t.Fatalf("dim = %d", m.Dim())
	}
	v := m.Vector("Person")
	var norm float64
	for _, x := range v {
		norm += x * x
	}
	if math.Abs(norm-1) > 1e-9 {
		t.Errorf("trained label vector should be unit norm, got %v", norm)
	}
}

func TestBatchEndpointsFallThrough(t *testing.T) {
	g := exampleGraph(t)
	// Build a batch containing only the WORKS_AT edge; endpoints live
	// in the resolver.
	bg := pg.NewGraph()
	bg.AllowDanglingEdges(true)
	e := &g.Edges()[0]
	if err := bg.PutEdge(e.ID, e.Labels, e.Src, e.Dst, e.Props); err != nil {
		t.Fatal(err)
	}
	b := &pg.Batch{Graph: bg, Resolver: g, Index: 2}
	m := Edges(bg.Edges(), []string{"from"}, word2vec.NewHashedEmbedder(4), BatchEndpoints(b))
	if m.Rows() != 1 {
		t.Fatalf("rows = %d", m.Rows())
	}
	emb := word2vec.NewHashedEmbedder(4)
	if !reflect.DeepEqual(m.Vecs[0][4:8], emb.Vector("Person")) {
		t.Error("batch endpoint resolution failed for source")
	}
	if !reflect.DeepEqual(m.Vecs[0][8:12], emb.Vector("Org.")) {
		t.Error("batch endpoint resolution failed for target")
	}
}

func TestEmptyInputs(t *testing.T) {
	emb := word2vec.NewHashedEmbedder(4)
	m := Nodes(nil, nil, emb)
	if m.Rows() != 0 || m.Dim() != 0 {
		t.Fatalf("empty node matrix: rows=%d dim=%d", m.Rows(), m.Dim())
	}
	me := Edges(nil, nil, emb, func(*pg.Edge) (string, string) { return "", "" })
	if me.Rows() != 0 {
		t.Fatalf("empty edge matrix: rows=%d", me.Rows())
	}
}
