// Package vectorize builds the hybrid representation vectors of §4.1:
// for a node, the Word2Vec embedding of its (sorted, concatenated)
// label set followed by a binary property-presence block over the
// dataset's global property-key set; for an edge, three embeddings
// (edge label, source label, target label) followed by the edge's
// binary property block.
package vectorize

import (
	"math"
	"sort"

	"github.com/pghive/pghive/internal/parallel"
	"github.com/pghive/pghive/internal/pg"
	"github.com/pghive/pghive/internal/word2vec"
)

// Embedder supplies fixed-dimension label embeddings. Both
// *word2vec.Model and *word2vec.HashedEmbedder satisfy it. Embedders
// are not required to be safe for concurrent use: the vectorizers
// resolve every distinct token exactly once on the calling goroutine
// (via Preload when supported) before fanning row construction out to
// workers.
type Embedder interface {
	Dim() int
	Vector(token string) []float64
}

// Preloader is the optional fast path for parallel vectorization: an
// Embedder that can compute and cache the vectors of many tokens at
// once, using up to `workers` goroutines internally.
// *word2vec.HashedEmbedder implements it.
type Preloader interface {
	Preload(tokens []string, workers int)
}

var (
	_ Embedder  = (*word2vec.Model)(nil)
	_ Embedder  = (*word2vec.HashedEmbedder)(nil)
	_ Preloader = (*word2vec.HashedEmbedder)(nil)
)

// resolveVectors returns the embedding of every distinct token in
// toks, resolving each exactly once on the calling goroutine so that
// non-concurrency-safe embedders stay safe while row construction
// runs on a worker pool. Preloader embedders batch-compute their
// cache first.
func resolveVectors(toks []string, emb Embedder, workers int) map[string][]float64 {
	distinct := make([]string, 0, 16)
	seen := map[string]struct{}{}
	for _, t := range toks {
		if _, ok := seen[t]; ok {
			continue
		}
		seen[t] = struct{}{}
		distinct = append(distinct, t)
	}
	if p, ok := emb.(Preloader); ok {
		p.Preload(distinct, workers)
	}
	vecs := make(map[string][]float64, len(distinct))
	for _, t := range distinct {
		vecs[t] = emb.Vector(t)
	}
	return vecs
}

// Matrix is the vectorized form of a set of nodes or edges: one row
// per element, aligned with IDs and Tokens.
type Matrix struct {
	// IDs aligns rows with graph elements.
	IDs []pg.ID
	// Tokens holds the canonical label token of each element ("" for
	// unlabeled), used later by the type-extraction step.
	Tokens []string
	// Vecs holds the representation vectors. All rows share one
	// backing array for locality.
	Vecs [][]float64
	// Keys is the global property-key layout of the binary block.
	Keys []string
	// EmbedDim is the width of each embedding block (d).
	EmbedDim int
	// BinStart is the offset where the binary property block begins
	// (d for nodes, 3d for edges).
	BinStart int
	// Bits lists, per row, the set positions of the binary block in
	// ascending order — the sparse view ELSH hashing iterates instead
	// of the mostly-zero dense tail.
	Bits [][]int32
}

// Rows returns the number of vectorized elements.
func (m *Matrix) Rows() int { return len(m.Vecs) }

// Dim returns the total vector dimensionality.
func (m *Matrix) Dim() int {
	if len(m.Vecs) == 0 {
		return 0
	}
	return len(m.Vecs[0])
}

// BuildCorpus extracts the label-token training corpus for Word2Vec
// from a graph (§4.1: the model is trained on the node and edge labels
// observed in the dataset). Each edge contributes the sentence
// [sourceToken, edgeToken, targetToken]; each node contributes its
// token followed by its property keys, which anchors label semantics
// to structure and gives isolated labels a distributional context.
// Sentences are deduplicated and repeated with logarithmically capped
// multiplicity, so corpus size scales with the number of distinct
// patterns rather than with graph size.
func BuildCorpus(g *pg.Graph) [][]string {
	return buildCorpus(g, nil, nil, nil)
}

// BuildCorpusInterned is BuildCorpus with the node sentences derived
// from the batch's distinct node shapes (one count-weighted addition
// per shape instead of one per node; a node's sentence — label token
// plus property keys — is exactly its shape), and with the edge
// endpoint tokens supplied by the pipeline's endpoint pass instead of
// re-resolved here. srcToks/dstToks must carry the tokens of the
// endpoints' labels in g itself ("" for endpoints not in g), aligned
// with g.Edges(); nil slices fall back to resolving against g. The
// resulting corpus is byte-identical to the non-interned one.
func BuildCorpusInterned(g *pg.Graph, nodeSI *pg.ShapeIndex, srcToks, dstToks []string) [][]string {
	return buildCorpus(g, nodeSI, srcToks, dstToks)
}

func buildCorpus(g *pg.Graph, nodeSI *pg.ShapeIndex, srcToks, dstToks []string) [][]string {
	type sent struct {
		words []string
		count int
	}
	seen := map[string]*sent{}
	// One key buffer reused across sentences: the map reads below
	// convert it without allocating, so only first-seen sentences pay
	// for a key copy.
	var keyBuf []byte
	sentKey := func(words []string) {
		keyBuf = keyBuf[:0]
		for _, w := range words {
			keyBuf = append(keyBuf, w...)
			keyBuf = append(keyBuf, '\x1f')
		}
	}
	add := func(words []string, count int) {
		nonEmpty := 0
		for _, w := range words {
			if w != "" {
				nonEmpty++
			}
		}
		if nonEmpty < 2 {
			return
		}
		sentKey(words)
		if s, ok := seen[string(keyBuf)]; ok {
			s.count += count
			return
		}
		seen[string(keyBuf)] = &sent{words: words, count: count}
	}

	nodes := g.Nodes()
	if nodeSI != nil {
		for s, rep := range nodeSI.Reps {
			n := &nodes[rep]
			tok := n.LabelToken()
			if tok == "" {
				continue
			}
			add(append([]string{tok}, n.PropertyKeys()...), int(nodeSI.Counts[s]))
		}
	} else {
		for i := range nodes {
			n := &nodes[i]
			tok := n.LabelToken()
			if tok == "" {
				continue
			}
			add(append([]string{tok}, n.PropertyKeys()...), 1)
		}
	}
	edges := g.Edges()
	for i := range edges {
		e := &edges[i]
		var src, dst string
		if srcToks != nil {
			src, dst = srcToks[i], dstToks[i]
		} else {
			src = pg.LabelToken(g.SrcLabels(e))
			dst = pg.LabelToken(g.DstLabels(e))
		}
		etok := e.LabelToken()
		// Inlined add() over the three scalars, so duplicate edge
		// sentences — the overwhelming majority — allocate nothing.
		nonEmpty := 0
		for _, w := range [...]string{src, etok, dst} {
			if w != "" {
				nonEmpty++
			}
		}
		if nonEmpty < 2 {
			continue
		}
		keyBuf = append(append(append(append(append(append(keyBuf[:0],
			src...), '\x1f'), etok...), '\x1f'), dst...), '\x1f')
		if s, ok := seen[string(keyBuf)]; ok {
			s.count++
			continue
		}
		seen[string(keyBuf)] = &sent{words: []string{src, etok, dst}, count: 1}
	}

	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var corpus [][]string
	for _, k := range keys {
		s := seen[k]
		reps := 1 + int(math.Log2(float64(s.count)))
		for r := 0; r < reps; r++ {
			corpus = append(corpus, s.words)
		}
	}
	return corpus
}

// TrainEmbedder builds the label corpus of g and trains a Word2Vec
// model on it with the given configuration.
func TrainEmbedder(g *pg.Graph, cfg word2vec.Config) *word2vec.Model {
	return word2vec.Train(BuildCorpus(g), cfg)
}

// Nodes vectorizes the given nodes against a fixed property-key
// layout. Each row is [embed(labelToken) | propertyBits] ∈ R^{d+K}.
func Nodes(nodes []pg.Node, keys []string, emb Embedder) *Matrix {
	return NodesParallel(nodes, keys, emb, 1)
}

// NodesParallel is Nodes with row construction fanned out over a
// worker pool. Distinct label tokens are resolved once up front, then
// workers fill disjoint row ranges, so the matrix is bit-identical to
// the sequential one for every worker count. workers <= 0 selects
// runtime.NumCPU().
func NodesParallel(nodes []pg.Node, keys []string, emb Embedder, workers int) *Matrix {
	d := emb.Dim()
	width := d + len(keys)
	keyIdx := indexKeys(keys)
	m := &Matrix{
		IDs:      make([]pg.ID, len(nodes)),
		Tokens:   make([]string, len(nodes)),
		Vecs:     make([][]float64, len(nodes)),
		Keys:     keys,
		EmbedDim: d,
		BinStart: d,
		Bits:     make([][]int32, len(nodes)),
	}
	for i := range nodes {
		m.Tokens[i] = nodes[i].LabelToken()
	}
	tokVecs := resolveVectors(m.Tokens, emb, workers)
	backing := make([]float64, len(nodes)*width)
	parallel.For(len(nodes), workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			n := &nodes[i]
			row := backing[i*width : (i+1)*width]
			copy(row[:d], tokVecs[m.Tokens[i]])
			bits := make([]int32, 0, len(n.Props))
			for k := range n.Props {
				if j, ok := keyIdx[k]; ok {
					row[d+j] = 1
					bits = append(bits, int32(j))
				}
			}
			sortBits(bits)
			m.IDs[i] = n.ID
			m.Vecs[i] = row
			m.Bits[i] = bits
		}
	})
	return m
}

// EndpointTokens resolves the source and target label tokens for an
// edge. Implementations: whole-graph resolution and batch resolution
// (with accumulated earlier batches).
type EndpointTokens func(e *pg.Edge) (src, dst string)

// GraphEndpoints returns an EndpointTokens resolver over a complete
// graph.
func GraphEndpoints(g *pg.Graph) EndpointTokens {
	return func(e *pg.Edge) (string, string) {
		return pg.LabelToken(g.SrcLabels(e)), pg.LabelToken(g.DstLabels(e))
	}
}

// BatchEndpoints returns an EndpointTokens resolver for a stream
// batch, falling back to the batch's accumulated resolver graph.
func BatchEndpoints(b *pg.Batch) EndpointTokens {
	return func(e *pg.Edge) (string, string) {
		src, dst := b.EndpointLabels(e)
		return pg.LabelToken(src), pg.LabelToken(dst)
	}
}

// EdgesParallel vectorizes edges against a fixed property-key
// layout, with endpoint tokens supplied per edge (aligned slices) —
// the form the pipeline uses to substitute discovered node-type
// names for unlabeled endpoints. Because the endpoint tokens are
// pre-resolved, rows are independent and workers fill disjoint
// ranges; the matrix is bit-identical to the sequential one for
// every worker count. workers <= 0 selects runtime.NumCPU().
func EdgesParallel(edges []pg.Edge, keys []string, emb Embedder, srcToks, dstToks []string, workers int) *Matrix {
	d := emb.Dim()
	width := 3*d + len(keys)
	keyIdx := indexKeys(keys)
	m := &Matrix{
		IDs:      make([]pg.ID, len(edges)),
		Tokens:   make([]string, len(edges)),
		Vecs:     make([][]float64, len(edges)),
		Keys:     keys,
		EmbedDim: d,
		BinStart: 3 * d,
		Bits:     make([][]int32, len(edges)),
	}
	for i := range edges {
		m.Tokens[i] = edges[i].LabelToken()
	}
	all := make([]string, 0, 3*len(edges))
	all = append(all, m.Tokens...)
	all = append(all, srcToks...)
	all = append(all, dstToks...)
	tokVecs := resolveVectors(all, emb, workers)
	backing := make([]float64, len(edges)*width)
	parallel.For(len(edges), workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e := &edges[i]
			row := backing[i*width : (i+1)*width]
			copy(row[:d], tokVecs[m.Tokens[i]])
			copy(row[d:2*d], tokVecs[srcToks[i]])
			copy(row[2*d:3*d], tokVecs[dstToks[i]])
			bits := make([]int32, 0, len(e.Props))
			for k := range e.Props {
				if j, ok := keyIdx[k]; ok {
					row[3*d+j] = 1
					bits = append(bits, int32(j))
				}
			}
			sortBits(bits)
			m.IDs[i] = e.ID
			m.Vecs[i] = row
			m.Bits[i] = bits
		}
	})
	return m
}

// Edges vectorizes the given edges against a fixed property-key
// layout. Each row is [embed(edgeToken) | embed(srcToken) |
// embed(dstToken) | propertyBits] ∈ R^{3d+Q} (§4.1). The resolver ep
// is called exactly once per edge, in slice order.
func Edges(edges []pg.Edge, keys []string, emb Embedder, ep EndpointTokens) *Matrix {
	srcToks := make([]string, len(edges))
	dstToks := make([]string, len(edges))
	for i := range edges {
		srcToks[i], dstToks[i] = ep(&edges[i])
	}
	return EdgesParallel(edges, keys, emb, srcToks, dstToks, 1)
}

func indexKeys(keys []string) map[string]int {
	idx := make(map[string]int, len(keys))
	for i, k := range keys {
		idx[k] = i
	}
	return idx
}
