package vectorize

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/pghive/pghive/internal/pg"
	"github.com/pghive/pghive/internal/word2vec"
)

func buildGraph(nodes, edges int, seed int64) *pg.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := pg.NewGraph()
	labels := []string{"Person", "Post", "Org", "City", ""}
	props := []string{"name", "age", "content", "founded", "lat", "lon"}
	ids := make([]pg.ID, 0, nodes)
	for i := 0; i < nodes; i++ {
		var ls []string
		if l := labels[rng.Intn(len(labels))]; l != "" {
			ls = []string{l}
		}
		pm := map[string]pg.Value{}
		for _, p := range props {
			if rng.Float64() < 0.4 {
				pm[p] = pg.Int(int64(rng.Intn(100)))
			}
		}
		ids = append(ids, g.AddNode(ls, pm))
	}
	etypes := []string{"KNOWS", "LIKES", "WORKS_AT"}
	for i := 0; i < edges; i++ {
		src := ids[rng.Intn(len(ids))]
		dst := ids[rng.Intn(len(ids))]
		pm := map[string]pg.Value{}
		if rng.Float64() < 0.5 {
			pm["since"] = pg.Int(int64(2000 + rng.Intn(25)))
		}
		_, _ = g.AddEdge([]string{etypes[rng.Intn(len(etypes))]}, src, dst, pm)
	}
	return g
}

func sameMatrix(t *testing.T, label string, a, b *Matrix) {
	t.Helper()
	if a.Rows() != b.Rows() || a.Dim() != b.Dim() {
		t.Fatalf("%s: shape differs: %dx%d vs %dx%d", label, a.Rows(), a.Dim(), b.Rows(), b.Dim())
	}
	for i := range a.Vecs {
		if a.IDs[i] != b.IDs[i] || a.Tokens[i] != b.Tokens[i] {
			t.Fatalf("%s: row %d metadata differs", label, i)
		}
		for j := range a.Vecs[i] {
			if a.Vecs[i][j] != b.Vecs[i][j] {
				t.Fatalf("%s: row %d dim %d: %v vs %v", label, i, j, a.Vecs[i][j], b.Vecs[i][j])
			}
		}
	}
}

// TestNodesParallelEquivalence checks that the worker-pool node
// vectorizer is bit-identical to the sequential one for every worker
// count, with both a preloading (hashed) and a plain (trained)
// embedder.
func TestNodesParallelEquivalence(t *testing.T) {
	g := buildGraph(800, 0, 17)
	keys := g.DistinctNodePropertyKeys()
	for _, emb := range []Embedder{
		word2vec.NewHashedEmbedder(16),
		TrainEmbedder(g, word2vec.Config{Dim: 8, Seed: 3}),
	} {
		seq := NodesParallel(g.Nodes(), keys, emb, 1)
		for _, workers := range []int{2, 4, 16} {
			par := NodesParallel(g.Nodes(), keys, emb, workers)
			sameMatrix(t, fmt.Sprintf("%T workers=%d", emb, workers), seq, par)
		}
	}
}

// TestEdgesParallelEquivalence mirrors the node check for the edge
// vectorizer, including agreement with the resolver-based Edges path.
func TestEdgesParallelEquivalence(t *testing.T) {
	g := buildGraph(300, 1200, 19)
	keys := g.DistinctEdgePropertyKeys()
	edges := g.Edges()
	srcToks := make([]string, len(edges))
	dstToks := make([]string, len(edges))
	ep := GraphEndpoints(g)
	for i := range edges {
		srcToks[i], dstToks[i] = ep(&edges[i])
	}
	emb := word2vec.NewHashedEmbedder(16)
	seq := EdgesParallel(edges, keys, emb, srcToks, dstToks, 1)
	resolver := Edges(edges, keys, emb, GraphEndpoints(g))
	sameMatrix(t, "resolver vs pre-resolved", resolver, seq)
	for _, workers := range []int{2, 4, 16} {
		par := EdgesParallel(edges, keys, emb, srcToks, dstToks, workers)
		sameMatrix(t, fmt.Sprintf("workers=%d", workers), seq, par)
	}
}
