// Package datagen generates the eight evaluation datasets of §5
// (Table 2) as synthetic property graphs that reproduce each dataset's
// schema statistics — node/edge type counts, label counts, multi-label
// structure, pattern heterogeneity, and size ratios — at a
// configurable scale, together with ground-truth type assignments for
// the F1* evaluation. It also implements the paper's noise injection:
// random property removal (0–40%) and label availability scenarios
// (100%, 50%, 0%).
package datagen

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"github.com/pghive/pghive/internal/pg"
)

// Gen enumerates property-value generators. The mixed generators
// produce a dominant kind with rare outliers of another kind, which is
// what makes the sampling-based datatype inference of §4.4 fallible
// (Fig. 8).
type Gen uint8

const (
	// GInt yields random integers.
	GInt Gen = iota
	// GFloat yields random floats.
	GFloat
	// GBool yields random booleans.
	GBool
	// GDate yields random calendar dates.
	GDate
	// GDateTime yields random timestamps.
	GDateTime
	// GString yields short random strings.
	GString
	// GIntWithFloats yields integers with ~8% float outliers
	// (full-scan type DOUBLE; samples often say INT).
	GIntWithFloats
	// GDateWithStrings yields dates with ~3% malformed strings
	// (full-scan type STRING; samples often say DATE).
	GDateWithStrings
	// GFloatWithStrings yields floats with ~1% string outliers.
	GFloatWithStrings
	// GIntWithManyStrings yields integers with ~25% string values
	// (dirty identifier columns); small samples frequently miss the
	// strings and infer INT, a ≥0.20 sampling error.
	GIntWithManyStrings
)

func (g Gen) value(rng *rand.Rand) pg.Value {
	switch g {
	case GInt:
		return pg.Int(int64(rng.Intn(100000)))
	case GFloat:
		return pg.Float(rng.Float64() * 1000)
	case GBool:
		return pg.Bool(rng.Intn(2) == 0)
	case GDate:
		return pg.Date(randTime(rng))
	case GDateTime:
		return pg.DateTime(randTime(rng))
	case GString:
		return pg.Str(randWord(rng))
	case GIntWithFloats:
		if rng.Float64() < 0.08 {
			return pg.Float(rng.Float64() * 100)
		}
		return pg.Int(int64(rng.Intn(100000)))
	case GDateWithStrings:
		if rng.Float64() < 0.03 {
			return pg.Str("n/a-" + randWord(rng))
		}
		return pg.Date(randTime(rng))
	case GFloatWithStrings:
		if rng.Float64() < 0.01 {
			return pg.Str("unknown")
		}
		return pg.Float(rng.Float64() * 10)
	case GIntWithManyStrings:
		if rng.Float64() < 0.25 {
			return pg.Str(randWord(rng))
		}
		return pg.Int(int64(rng.Intn(1 << 20)))
	default:
		return pg.Str(randWord(rng))
	}
}

func randTime(rng *rand.Rand) time.Time {
	base := time.Date(1990, 1, 1, 0, 0, 0, 0, time.UTC)
	return base.Add(time.Duration(rng.Int63n(int64(35 * 365 * 24 * time.Hour))))
}

const letters = "abcdefghijklmnopqrstuvwxyz"

func randWord(rng *rand.Rand) string {
	n := 4 + rng.Intn(8)
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[rng.Intn(len(letters))]
	}
	return string(b)
}

// Prop declares one property of a type.
type Prop struct {
	// Key is the property key.
	Key string
	// Gen is the value generator.
	Gen Gen
	// Prob is the presence probability (1 = mandatory).
	Prob float64
}

// NodeSpec declares one ground-truth node type.
type NodeSpec struct {
	// Name is the ground-truth type name used by the evaluation.
	Name string
	// Labels is the label set every instance carries.
	Labels []string
	// Weight is the type's share of the node population.
	Weight float64
	// Props declares the type's properties.
	Props []Prop
}

// EdgeCard shapes how edge endpoints are wired.
type EdgeCard uint8

const (
	// ManyToMany wires uniformly random endpoint pairs.
	ManyToMany EdgeCard = iota
	// ManyToOne gives every source at most one target-edge of this
	// type (WORKS_AT-style).
	ManyToOne
	// OneToMany gives every target at most one source-edge.
	OneToMany
	// OneToOne pairs sources and targets bijectively.
	OneToOne
)

// EdgeSpec declares one ground-truth edge type.
type EdgeSpec struct {
	// Name is the ground-truth type name.
	Name string
	// Labels is the label set every instance carries.
	Labels []string
	// Src and Dst name the endpoint node types (by NodeSpec.Name).
	Src, Dst string
	// Weight is the type's share of the edge population.
	Weight float64
	// Card shapes the endpoint wiring.
	Card EdgeCard
	// Props declares the type's properties.
	Props []Prop
}

// Spec declares a full dataset.
type Spec struct {
	// Name identifies the dataset (POLE, MB6, ...).
	Name string
	// Real marks datasets that are real-world in the paper (R vs S in
	// Table 2); informational.
	Real bool
	// Nodes and Edges hold the type declarations.
	Nodes []NodeSpec
	Edges []EdgeSpec
	// DefaultNodes / DefaultEdges are the element counts at scale 1,
	// chosen ≈ Table 2 ÷ 200 (IYP ÷ 4000) so the full experiment grid
	// runs on one machine.
	DefaultNodes int
	DefaultEdges int
}

// Dataset is a generated graph plus its ground truth.
type Dataset struct {
	Name  string
	Spec  *Spec
	Graph *pg.Graph
	// NodeTruth / EdgeTruth map element IDs to ground-truth type
	// names. Noise injection never alters them.
	NodeTruth map[pg.ID]string
	EdgeTruth map[pg.ID]string
}

// Generate materializes a dataset at the given scale (1.0 = the
// spec's default size). Generation is deterministic per seed.
func Generate(spec *Spec, scale float64, seed int64) *Dataset {
	if scale <= 0 {
		scale = 1
	}
	rng := rand.New(rand.NewSource(seed))
	g := pg.NewGraph()
	d := &Dataset{
		Name:      spec.Name,
		Spec:      spec,
		Graph:     g,
		NodeTruth: map[pg.ID]string{},
		EdgeTruth: map[pg.ID]string{},
	}

	nNodes := int(float64(spec.DefaultNodes) * scale)
	nEdges := int(float64(spec.DefaultEdges) * scale)

	// Normalize weights.
	var nw float64
	for _, ns := range spec.Nodes {
		nw += ns.Weight
	}
	var ew float64
	for _, es := range spec.Edges {
		ew += es.Weight
	}

	// Generate nodes per type; remember instances for edge wiring.
	instances := map[string][]pg.ID{}
	for _, ns := range spec.Nodes {
		count := int(float64(nNodes) * ns.Weight / nw)
		if count < 1 {
			count = 1
		}
		for i := 0; i < count; i++ {
			props := genProps(ns.Props, rng)
			id := g.AddNode(ns.Labels, props)
			d.NodeTruth[id] = ns.Name
			instances[ns.Name] = append(instances[ns.Name], id)
		}
	}

	for _, es := range spec.Edges {
		count := int(float64(nEdges) * es.Weight / ew)
		if count < 1 {
			count = 1
		}
		srcs := instances[es.Src]
		dsts := instances[es.Dst]
		if len(srcs) == 0 || len(dsts) == 0 {
			continue
		}
		wireEdges(d, es, srcs, dsts, count, rng)
	}
	return d
}

func genProps(specs []Prop, rng *rand.Rand) map[string]pg.Value {
	props := map[string]pg.Value{}
	for _, p := range specs {
		if p.Prob >= 1 || rng.Float64() < p.Prob {
			props[p.Key] = p.Gen.value(rng)
		}
	}
	return props
}

func wireEdges(d *Dataset, es EdgeSpec, srcs, dsts []pg.ID, count int, rng *rand.Rand) {
	g := d.Graph
	addEdge := func(src, dst pg.ID) {
		id, err := g.AddEdge(es.Labels, src, dst, genProps(es.Props, rng))
		if err != nil {
			return
		}
		d.EdgeTruth[id] = es.Name
	}
	switch es.Card {
	case ManyToOne:
		// Each source appears at most once; targets are shared.
		if count > len(srcs) {
			count = len(srcs)
		}
		perm := rng.Perm(len(srcs))[:count]
		for _, si := range perm {
			addEdge(srcs[si], dsts[rng.Intn(len(dsts))])
		}
	case OneToMany:
		if count > len(dsts) {
			count = len(dsts)
		}
		perm := rng.Perm(len(dsts))[:count]
		for _, di := range perm {
			addEdge(srcs[rng.Intn(len(srcs))], dsts[di])
		}
	case OneToOne:
		max := len(srcs)
		if len(dsts) < max {
			max = len(dsts)
		}
		if count > max {
			count = max
		}
		sp := rng.Perm(len(srcs))[:count]
		dp := rng.Perm(len(dsts))[:count]
		for i := 0; i < count; i++ {
			addEdge(srcs[sp[i]], dsts[dp[i]])
		}
	default: // ManyToMany
		for i := 0; i < count; i++ {
			addEdge(srcs[rng.Intn(len(srcs))], dsts[rng.Intn(len(dsts))])
		}
	}
}

// InjectNoise returns a noisy deep copy of the dataset, per the §5
// protocol: every property of every node and edge is independently
// removed with probability propNoise, and every element keeps its
// labels with probability labelAvail (otherwise all its labels are
// dropped). Ground truth is preserved.
func InjectNoise(d *Dataset, propNoise, labelAvail float64, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	g := d.Graph.Clone()
	nodes := g.Nodes()
	for i := range nodes {
		n := &nodes[i]
		dropProps(n.Props, propNoise, rng)
		if labelAvail < 1 && rng.Float64() >= labelAvail {
			n.Labels = nil
		}
	}
	edges := g.Edges()
	for i := range edges {
		e := &edges[i]
		dropProps(e.Props, propNoise, rng)
		if labelAvail < 1 && rng.Float64() >= labelAvail {
			e.Labels = nil
		}
	}
	return &Dataset{
		Name:      d.Name,
		Spec:      d.Spec,
		Graph:     g,
		NodeTruth: d.NodeTruth,
		EdgeTruth: d.EdgeTruth,
	}
}

func dropProps(props map[string]pg.Value, noise float64, rng *rand.Rand) {
	if noise <= 0 || len(props) == 0 {
		return
	}
	// Draw over sorted keys: map iteration order is randomized per
	// process, and pairing rng draws with it would make noise
	// injection non-reproducible for a fixed seed.
	keys := make([]string, 0, len(props))
	for k := range props {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if rng.Float64() < noise {
			delete(props, k)
		}
	}
}

// Stats returns the Table 2-style statistics of the generated graph
// plus the ground-truth type counts.
func (d *Dataset) Stats() TableStats {
	s := pg.ComputeStats(d.Graph)
	nodeTypes := map[string]bool{}
	for _, t := range d.NodeTruth {
		nodeTypes[t] = true
	}
	edgeTypes := map[string]bool{}
	for _, t := range d.EdgeTruth {
		edgeTypes[t] = true
	}
	return TableStats{
		Name:         d.Name,
		Nodes:        s.Nodes,
		Edges:        s.Edges,
		NodeTypes:    len(nodeTypes),
		EdgeTypes:    len(edgeTypes),
		NodeLabels:   s.NodeLabels,
		EdgeLabels:   s.EdgeLabels,
		NodePatterns: s.NodePatterns,
		EdgePatterns: s.EdgePatterns,
		Real:         d.Spec.Real,
	}
}

// TableStats is one row of Table 2.
type TableStats struct {
	Name         string
	Nodes        int
	Edges        int
	NodeTypes    int
	EdgeTypes    int
	NodeLabels   int
	EdgeLabels   int
	NodePatterns int
	EdgePatterns int
	Real         bool
}

// String renders the row.
func (t TableStats) String() string {
	kind := "S"
	if t.Real {
		kind = "R"
	}
	return fmt.Sprintf("%-8s %8d %9d %6d %6d %7d %7d %9d %9d  %s",
		t.Name, t.Nodes, t.Edges, t.NodeTypes, t.EdgeTypes,
		t.NodeLabels, t.EdgeLabels, t.NodePatterns, t.EdgePatterns, kind)
}
