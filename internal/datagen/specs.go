package datagen

import (
	"fmt"
	"math/rand"
	"sort"
)

// specs.go declares the eight evaluation datasets of Table 2. Sizes
// are scaled so the whole experiment grid runs on one machine;
// structure (type/label multiplicities, multi-label co-occurrence,
// shared integration labels, pattern heterogeneity, edge-label reuse
// across endpoint pairs) follows each dataset's description in §5.
//
// Several specs declare multiple NodeSpecs with the same Name: these
// are label-set variants of one ground-truth type (multi-label
// datasets such as MB6/FIB25, where nodes of one type carry varying
// co-occurring labels).

func m(key string, g Gen) Prop            { return Prop{Key: key, Gen: g, Prob: 1} }
func o(key string, g Gen, p float64) Prop { return Prop{Key: key, Gen: g, Prob: p} }

// POLE is the Neo4j crime-investigation benchmark
// (person–object–location–event): a small, flat, fully labeled graph.
func POLE() *Spec {
	return &Spec{
		Name: "POLE", Real: false,
		DefaultNodes: 300, DefaultEdges: 520,
		Nodes: []NodeSpec{
			{Name: "Person", Labels: []string{"Person"}, Weight: 3,
				Props: []Prop{m("name", GString), m("surname", GString), m("age", GInt), o("nhs_no", GString, 0.8)}},
			{Name: "Officer", Labels: []string{"Officer"}, Weight: 0.6,
				Props: []Prop{m("rank", GString), m("badge_no", GInt), m("name", GString), m("surname", GString)}},
			{Name: "Location", Labels: []string{"Location"}, Weight: 1.5,
				Props: []Prop{m("address", GString), m("postcode", GString), m("latitude", GFloat), m("longitude", GFloat)}},
			{Name: "Area", Labels: []string{"Area"}, Weight: 0.2,
				Props: []Prop{m("areaCode", GString)}},
			{Name: "Crime", Labels: []string{"Crime"}, Weight: 2,
				Props: []Prop{m("date", GDateWithStrings), m("type", GString), o("outcome", GString, 0.7), o("charge", GString, 0.4)}},
			{Name: "Object", Labels: []string{"Object"}, Weight: 0.5,
				Props: []Prop{m("description", GString), m("type", GString)}},
			{Name: "Phone", Labels: []string{"Phone"}, Weight: 1,
				Props: []Prop{m("phoneNo", GString)}},
			{Name: "PhoneCall", Labels: []string{"PhoneCall"}, Weight: 1.5,
				Props: []Prop{m("call_date", GDate), m("call_duration", GIntWithFloats), m("call_type", GString)}},
			{Name: "Vehicle", Labels: []string{"Vehicle"}, Weight: 0.5,
				Props: []Prop{m("make", GString), m("model", GString), m("reg", GString), o("year", GInt, 0.6)}},
			{Name: "Email", Labels: []string{"Email"}, Weight: 0.4,
				Props: []Prop{m("email_address", GString)}},
			{Name: "POI", Labels: []string{"POI"}, Weight: 0.3,
				Props: []Prop{m("name", GString), o("reason", GString, 0.5)}},
		},
		Edges: []EdgeSpec{
			{Name: "KNOWS", Labels: []string{"KNOWS"}, Src: "Person", Dst: "Person", Weight: 2},
			{Name: "KNOWS_SN", Labels: []string{"KNOWS_SN"}, Src: "Person", Dst: "Person", Weight: 1},
			{Name: "FAMILY_REL", Labels: []string{"FAMILY_REL"}, Src: "Person", Dst: "Person", Weight: 0.8},
			{Name: "CALLER", Labels: []string{"CALLER"}, Src: "PhoneCall", Dst: "Phone", Weight: 1.2, Card: ManyToOne},
			{Name: "CALLED", Labels: []string{"CALLED"}, Src: "PhoneCall", Dst: "Phone", Weight: 1.2, Card: ManyToOne},
			{Name: "HAS_PHONE", Labels: []string{"HAS_PHONE"}, Src: "Person", Dst: "Phone", Weight: 0.9, Card: ManyToOne},
			{Name: "HAS_EMAIL", Labels: []string{"HAS_EMAIL"}, Src: "Person", Dst: "Email", Weight: 0.4, Card: ManyToOne},
			{Name: "CURRENT_ADDRESS", Labels: []string{"CURRENT_ADDRESS"}, Src: "Person", Dst: "Location", Weight: 1, Card: ManyToOne},
			{Name: "COMMITTED", Labels: []string{"COMMITTED"}, Src: "Person", Dst: "Crime", Weight: 1.2},
			{Name: "INVESTIGATED_BY", Labels: []string{"INVESTIGATED_BY"}, Src: "Crime", Dst: "Officer", Weight: 1, Card: ManyToOne},
			{Name: "OCCURRED_AT", Labels: []string{"OCCURRED_AT"}, Src: "Crime", Dst: "Location", Weight: 1, Card: ManyToOne},
			{Name: "INVOLVED_IN", Labels: []string{"INVOLVED_IN"}, Src: "Object", Dst: "Crime", Weight: 0.5},
			{Name: "PARTY_TO", Labels: []string{"PARTY_TO"}, Src: "Vehicle", Dst: "Crime", Weight: 0.4},
			{Name: "OWNER", Labels: []string{"OWNER"}, Src: "Person", Dst: "Vehicle", Weight: 0.4, Card: ManyToOne},
			{Name: "FLAGGED_AS", Labels: []string{"FLAGGED_AS"}, Src: "Person", Dst: "POI", Weight: 0.3, Card: OneToOne},
			// LOCATED_IN is reused across two endpoint pairs (17 edge
			// types over 16 labels in Table 2).
			{Name: "LOCATED_IN(Location)", Labels: []string{"LOCATED_IN"}, Src: "Location", Dst: "Area", Weight: 0.8, Card: ManyToOne},
			{Name: "LOCATED_IN(Crime)", Labels: []string{"LOCATED_IN"}, Src: "Crime", Dst: "Area", Weight: 0.5, Card: ManyToOne},
		},
	}
}

// connectome builds the shared structure of the two fruit-fly
// connectome datasets (MB6 mushroom body, FIB25 medulla): 4 node
// types over 10 labels (heavily multi-labeled neurons), 5 edge types
// over 3 labels (ConnectsTo and Contains reused across endpoint
// pairs).
func connectome(name string, defNodes, defEdges int, neuronOptionals float64) *Spec {
	np := func(p float64) float64 { return p * neuronOptionals }
	neuron := func(labels []string, w float64) NodeSpec {
		return NodeSpec{Name: "Neuron", Labels: labels, Weight: w, Props: []Prop{
			m("bodyId", GInt),
			o("status", GString, 0.9),
			o("pre", GInt, np(0.8)),
			o("post", GInt, np(0.8)),
			o("size", GIntWithFloats, np(0.7)),
			o("name", GString, np(0.6)),
		}}
	}
	return &Spec{
		Name: name, Real: false,
		DefaultNodes: defNodes, DefaultEdges: defEdges,
		Nodes: []NodeSpec{
			neuron([]string{"Neuron"}, 1.5),
			neuron([]string{"Neuron", "KC"}, 1.2),
			neuron([]string{"Neuron", "MBON"}, 0.4),
			neuron([]string{"Neuron", "PN"}, 0.4),
			neuron([]string{"Neuron", "APL"}, 0.1),
			neuron([]string{"Neuron", "DAN"}, 0.2),
			{Name: "Synapse", Labels: []string{"Synapse"}, Weight: 3, Props: []Prop{
				m("type", GString), m("confidence", GFloatWithStrings), o("location", GString, 0.8)}},
			{Name: "SynapseSet", Labels: []string{"SynapseSet"}, Weight: 1.5, Props: []Prop{
				o("timeStamp", GDateTime, 0.5)}},
			{Name: "Meta", Labels: []string{"DataModel", "Meta"}, Weight: 0.02, Props: []Prop{
				m("lastDatabaseEdit", GDate), m("dataset", GString)}},
		},
		Edges: []EdgeSpec{
			{Name: "ConnectsTo(Neuron)", Labels: []string{"ConnectsTo"}, Src: "Neuron", Dst: "Neuron", Weight: 2,
				Props: []Prop{m("weight", GInt), o("roiInfo", GString, 0.5)}},
			{Name: "ConnectsTo(SynapseSet)", Labels: []string{"ConnectsTo"}, Src: "SynapseSet", Dst: "SynapseSet", Weight: 1,
				Props: []Prop{m("weight", GInt)}},
			{Name: "Contains(SynapseSet)", Labels: []string{"Contains"}, Src: "Neuron", Dst: "SynapseSet", Weight: 1.5, Card: OneToMany},
			{Name: "Contains(Synapse)", Labels: []string{"Contains"}, Src: "SynapseSet", Dst: "Synapse", Weight: 2.5, Card: OneToMany},
			{Name: "SynapsesTo", Labels: []string{"SynapsesTo"}, Src: "Synapse", Dst: "Synapse", Weight: 2},
		},
	}
}

// MB6 models the mushroom-body connectome (many structural variants
// per neuron).
func MB6() *Spec { return connectome("MB6", 1200, 2400, 1.0) }

// FIB25 models the medulla connectome (fewer structural variants).
func FIB25() *Spec { return connectome("FIB25", 1600, 3200, 0.6) }

// HETIO models the Hetionet biomedical knowledge graph: 11 specific
// node types, each additionally tagged with a shared integration
// label, and 24 edge types with distinct labels.
func HETIO() *Spec {
	node := func(name string, w float64, props ...Prop) NodeSpec {
		return NodeSpec{Name: name, Labels: []string{"HetionetNode", name}, Weight: w, Props: props}
	}
	edge := func(label, src, dst string, w float64) EdgeSpec {
		return EdgeSpec{Name: label, Labels: []string{label}, Src: src, Dst: dst, Weight: w}
	}
	return &Spec{
		Name: "HET.IO", Real: true,
		DefaultNodes: 470, DefaultEdges: 5600,
		// Each metanode type carries the shared identifier/name pair
		// plus the type-specific attributes Hetionet records (source
		// ontology IDs, chemistry fields, genomic coordinates, ...).
		Nodes: []NodeSpec{
			node("Gene", 4, m("identifier", GInt), m("name", GString),
				m("chromosome", GString), o("description", GString, 0.7)),
			node("Disease", 0.4, m("identifier", GString), m("name", GString), m("mesh_id", GString)),
			node("Compound", 1, m("identifier", GString), m("name", GString),
				m("inchikey", GString), o("smiles", GString, 0.8)),
			node("Anatomy", 0.4, m("identifier", GString), m("name", GString), m("bto_id", GString)),
			node("BiologicalProcess", 2, m("identifier", GString), m("name", GString), m("go_domain", GString)),
			node("CellularComponent", 0.4, m("identifier", GString), m("name", GString), m("go_component", GString)),
			node("MolecularFunction", 0.8, m("identifier", GString), m("name", GString), m("go_function", GString)),
			node("Pathway", 0.5, m("identifier", GString), m("name", GString), m("pc_source", GString)),
			node("PharmacologicClass", 0.1, m("identifier", GString), m("name", GString), m("class_type", GString)),
			node("SideEffect", 1.5, m("identifier", GString), m("name", GString), m("umls_id", GString)),
			node("Symptom", 0.2, m("identifier", GString), m("name", GString), m("mesh_tree", GString)),
		},
		Edges: []EdgeSpec{
			edge("GparticipatesBP", "Gene", "BiologicalProcess", 2),
			edge("GparticipatesCC", "Gene", "CellularComponent", 1),
			edge("GparticipatesMF", "Gene", "MolecularFunction", 1),
			edge("GparticipatesPW", "Gene", "Pathway", 1),
			edge("GinteractsG", "Gene", "Gene", 2),
			edge("GcovariesG", "Gene", "Gene", 1.5),
			edge("GregulatesG", "Gene", "Gene", 1.5),
			edge("AexpressesA", "Anatomy", "Gene", 3),
			edge("AupregulatesG", "Anatomy", "Gene", 1),
			edge("AdownregulatesG", "Anatomy", "Gene", 1),
			edge("CtreatsD", "Compound", "Disease", 0.3),
			edge("CpalliatesD", "Compound", "Disease", 0.2),
			edge("CbindsG", "Compound", "Gene", 1),
			edge("CupregulatesG", "Compound", "Gene", 0.8),
			edge("CdownregulatesG", "Compound", "Gene", 0.8),
			edge("CresemblesC", "Compound", "Compound", 0.6),
			edge("CcausesSE", "Compound", "SideEffect", 1.5),
			edge("DassociatesG", "Disease", "Gene", 1),
			edge("DupregulatesG", "Disease", "Gene", 0.6),
			edge("DdownregulatesG", "Disease", "Gene", 0.6),
			edge("DlocalizesA", "Disease", "Anatomy", 0.5),
			edge("DpresentsS", "Disease", "Symptom", 0.5),
			edge("DresemblesD", "Disease", "Disease", 0.2),
			edge("PCincludesC", "PharmacologicClass", "Compound", 0.2),
		},
	}
}

// ICIJ models the offshore-leaks database: few types, very
// heterogeneous property patterns (integration of several leaks).
func ICIJ() *Spec {
	return &Spec{
		Name: "ICIJ", Real: true,
		DefaultNodes: 2500, DefaultEdges: 4200,
		Nodes: []NodeSpec{
			{Name: "Entity", Labels: []string{"Entity"}, Weight: 3, Props: []Prop{
				m("name", GString), o("jurisdiction", GString, 0.8),
				o("incorporation_date", GDateWithStrings, 0.6), o("status", GString, 0.5),
				o("address", GString, 0.4), o("country_codes", GString, 0.5),
				o("service_provider", GString, 0.3), o("closed_date", GDate, 0.2),
				o("ibcRUC", GIntWithManyStrings, 0.08)}},
			{Name: "Officer", Labels: []string{"Officer"}, Weight: 2.5, Props: []Prop{
				m("name", GString), o("country_codes", GString, 0.6), o("valid_until", GString, 0.5)}},
			{Name: "Intermediary", Labels: []string{"Intermediary"}, Weight: 0.8, Props: []Prop{
				m("name", GString), o("status", GString, 0.5), o("country_codes", GString, 0.6),
				o("internal_id", GIntWithFloats, 0.4)}},
			{Name: "Address", Labels: []string{"Address"}, Weight: 2, Props: []Prop{
				m("address", GString), o("country_codes", GString, 0.7), o("sourceID", GString, 0.5)}},
			{Name: "Other", Labels: []string{"Note", "Other"}, Weight: 0.3, Props: []Prop{
				o("name", GString, 0.8), o("note", GString, 0.3)}},
		},
		Edges: []EdgeSpec{
			{Name: "officer_of", Labels: []string{"officer_of"}, Src: "Officer", Dst: "Entity", Weight: 3,
				Props: []Prop{o("link", GString, 0.5), o("start_date", GDate, 0.3)}},
			{Name: "intermediary_of", Labels: []string{"intermediary_of"}, Src: "Intermediary", Dst: "Entity", Weight: 1.5,
				Props: []Prop{o("link", GString, 0.4)}},
			{Name: "registered_address", Labels: []string{"registered_address"}, Src: "Entity", Dst: "Address", Weight: 2, Card: ManyToOne},
			{Name: "similar", Labels: []string{"similar"}, Src: "Entity", Dst: "Entity", Weight: 0.5},
			{Name: "same_name_as", Labels: []string{"same_name_as"}, Src: "Officer", Dst: "Officer", Weight: 0.5},
			{Name: "same_id_as", Labels: []string{"same_id_as"}, Src: "Entity", Dst: "Entity", Weight: 0.2},
			{Name: "underlying", Labels: []string{"underlying"}, Src: "Entity", Dst: "Entity", Weight: 0.3},
			{Name: "probably_same_officer_as", Labels: []string{"probably_same_officer_as"}, Src: "Officer", Dst: "Officer", Weight: 0.4},
			{Name: "connected_to", Labels: []string{"connected_to"}, Src: "Other", Dst: "Entity", Weight: 0.3},
			{Name: "same_company_as", Labels: []string{"same_company_as"}, Src: "Entity", Dst: "Entity", Weight: 0.2},
			{Name: "shareholder_of", Labels: []string{"shareholder_of"}, Src: "Officer", Dst: "Entity", Weight: 1,
				Props: []Prop{o("shares", GIntWithFloats, 0.5)}},
			{Name: "director_of", Labels: []string{"director_of"}, Src: "Officer", Dst: "Entity", Weight: 1},
			{Name: "beneficiary_of", Labels: []string{"beneficiary_of"}, Src: "Officer", Dst: "Entity", Weight: 0.6},
			{Name: "secretary_of", Labels: []string{"secretary_of"}, Src: "Officer", Dst: "Entity", Weight: 0.4},
		},
	}
}

// LDBC models the LDBC social network benchmark: Post and Comment
// share the Message label; HAS_CREATOR, REPLY_OF and IS_LOCATED_IN
// labels are reused across endpoint pairs.
func LDBC() *Spec {
	return &Spec{
		Name: "LDBC", Real: false,
		DefaultNodes: 3200, DefaultEdges: 12500,
		Nodes: []NodeSpec{
			{Name: "Person", Labels: []string{"Person"}, Weight: 1, Props: []Prop{
				m("firstName", GString), m("lastName", GString), m("birthday", GDate),
				m("creationDate", GDateTime), m("browserUsed", GString), m("locationIP", GString),
				m("gender", GString), o("email", GString, 0.7), o("speaks", GString, 0.6)}},
			{Name: "Forum", Labels: []string{"Forum"}, Weight: 0.8, Props: []Prop{
				m("title", GString), m("creationDate", GDateTime)}},
			{Name: "Post", Labels: []string{"Message", "Post"}, Weight: 3, Props: []Prop{
				m("creationDate", GDateTime), m("browserUsed", GString), m("locationIP", GString),
				m("length", GInt), o("content", GString, 0.8), o("imageFile", GString, 0.25)}},
			{Name: "Comment", Labels: []string{"Comment", "Message"}, Weight: 4, Props: []Prop{
				m("creationDate", GDateTime), m("browserUsed", GString), m("locationIP", GString),
				m("length", GInt), m("content", GString)}},
			{Name: "Place", Labels: []string{"Place"}, Weight: 0.3, Props: []Prop{
				m("name", GString), m("url", GString), m("type", GString)}},
			{Name: "Organisation", Labels: []string{"Organisation"}, Weight: 0.4, Props: []Prop{
				m("name", GString), m("url", GString), m("type", GString)}},
			{Name: "Tag", Labels: []string{"Tag"}, Weight: 0.5, Props: []Prop{
				m("name", GString), m("url", GString)}},
		},
		Edges: []EdgeSpec{
			{Name: "KNOWS", Labels: []string{"KNOWS"}, Src: "Person", Dst: "Person", Weight: 2,
				Props: []Prop{m("creationDate", GDateTime)}},
			{Name: "HAS_CREATOR(Post)", Labels: []string{"HAS_CREATOR"}, Src: "Post", Dst: "Person", Weight: 2.5, Card: ManyToOne},
			{Name: "HAS_CREATOR(Comment)", Labels: []string{"HAS_CREATOR"}, Src: "Comment", Dst: "Person", Weight: 3.5, Card: ManyToOne},
			{Name: "REPLY_OF(Post)", Labels: []string{"REPLY_OF"}, Src: "Comment", Dst: "Post", Weight: 2, Card: ManyToOne},
			{Name: "REPLY_OF(Comment)", Labels: []string{"REPLY_OF"}, Src: "Comment", Dst: "Comment", Weight: 1.5, Card: ManyToOne},
			{Name: "CONTAINER_OF", Labels: []string{"CONTAINER_OF"}, Src: "Forum", Dst: "Post", Weight: 2.5, Card: OneToMany},
			{Name: "HAS_MEMBER", Labels: []string{"HAS_MEMBER"}, Src: "Forum", Dst: "Person", Weight: 2,
				Props: []Prop{m("joinDate", GDateTime)}},
			{Name: "HAS_MODERATOR", Labels: []string{"HAS_MODERATOR"}, Src: "Forum", Dst: "Person", Weight: 0.8, Card: ManyToOne},
			{Name: "HAS_TAG", Labels: []string{"HAS_TAG"}, Src: "Post", Dst: "Tag", Weight: 1.5},
			{Name: "HAS_INTEREST", Labels: []string{"HAS_INTEREST"}, Src: "Person", Dst: "Tag", Weight: 1},
			{Name: "LIKES", Labels: []string{"LIKES"}, Src: "Person", Dst: "Post", Weight: 2,
				Props: []Prop{m("creationDate", GDateTime)}},
			{Name: "WORK_AT", Labels: []string{"WORK_AT"}, Src: "Person", Dst: "Organisation", Weight: 0.7,
				Card: ManyToOne, Props: []Prop{m("workFrom", GInt)}},
			{Name: "STUDY_AT", Labels: []string{"STUDY_AT"}, Src: "Person", Dst: "Organisation", Weight: 0.5,
				Card: ManyToOne, Props: []Prop{m("classYear", GIntWithFloats)}},
			{Name: "IS_PART_OF", Labels: []string{"IS_PART_OF"}, Src: "Place", Dst: "Place", Weight: 0.3, Card: ManyToOne},
			{Name: "IS_LOCATED_IN(Person)", Labels: []string{"IS_LOCATED_IN"}, Src: "Person", Dst: "Place", Weight: 1, Card: ManyToOne},
			{Name: "IS_LOCATED_IN(Organisation)", Labels: []string{"IS_LOCATED_IN"}, Src: "Organisation", Dst: "Place", Weight: 0.4, Card: ManyToOne},
			{Name: "HAS_TYPE", Labels: []string{"HAS_TYPE"}, Src: "Tag", Dst: "Tag", Weight: 0.4, Card: ManyToOne},
		},
	}
}

// CORD19 models the COVID-19 knowledge graph: many node types with
// bibliographic and biomedical payloads and heterogeneous optionals.
func CORD19() *Spec {
	node := func(name string, w float64, props ...Prop) NodeSpec {
		return NodeSpec{Name: name, Labels: []string{name}, Weight: w, Props: props}
	}
	edge := func(label, src, dst string, w float64, card EdgeCard) EdgeSpec {
		return EdgeSpec{Name: label, Labels: []string{label}, Src: src, Dst: dst, Weight: w, Card: card}
	}
	return &Spec{
		Name: "CORD19", Real: true,
		DefaultNodes: 2700, DefaultEdges: 2900,
		Nodes: []NodeSpec{
			node("Paper", 2, m("title", GString), o("publish_time", GDateWithStrings, 0.8),
				o("source", GString, 0.7), o("doi", GString, 0.6), o("license", GString, 0.4),
				o("url", GString, 0.5)),
			node("Author", 3, m("last", GString), o("first", GString, 0.9),
				o("middle", GString, 0.3), o("email", GString, 0.2)),
			node("Affiliation", 0.8, m("institution", GString), o("country", GString, 0.6), o("laboratory", GString, 0.3)),
			node("Abstract", 1.5, m("text", GString)),
			node("BodyText", 3, m("text", GString), o("section", GString, 0.7)),
			node("Citation", 2.5, o("title", GString, 0.8), o("year", GIntWithFloats, 0.6), o("venue", GString, 0.4)),
			node("Journal", 0.3, m("name", GString), o("issn", GString, 0.5)),
			node("GeneSymbol", 0.6, m("sid", GString)),
			node("Disease", 0.4, m("name", GString), o("icd10", GString, 0.4)),
			node("Anatomy", 0.3, m("name", GString)),
			node("ClinicalTrial", 0.2, m("trial_id", GString), o("phase", GString, 0.5), o("enrollment", GIntWithManyStrings, 0.5)),
			node("Patent", 0.15, m("patent_id", GString), o("office", GString, 0.6), o("grant_year", GIntWithFloats, 0.6)),
			node("Fraction", 1, m("kind", GString), o("score", GFloatWithStrings, 0.7)),
			node("Word", 1.2, m("value", GString)),
			node("PaperID", 1.4, m("type", GString), m("id", GString)),
			node("Country", 0.1, m("name", GString), o("iso2", GString, 0.8)),
		},
		Edges: []EdgeSpec{
			edge("PAPER_HAS_ABSTRACT", "Paper", "Abstract", 1.2, OneToMany),
			edge("PAPER_HAS_BODYTEXT", "Paper", "BodyText", 2, OneToMany),
			edge("PAPER_HAS_CITATION", "Paper", "Citation", 2, ManyToMany),
			edge("AUTHOR_WROTE", "Author", "Paper", 2.5, ManyToMany),
			edge("AUTHOR_AFFILIATED", "Author", "Affiliation", 1.2, ManyToOne),
			edge("PAPER_IN_JOURNAL", "Paper", "Journal", 1, ManyToOne),
			edge("MENTIONS_GENE", "BodyText", "GeneSymbol", 0.8, ManyToMany),
			edge("MENTIONS_DISEASE", "BodyText", "Disease", 0.7, ManyToMany),
			edge("MENTIONS_ANATOMY", "BodyText", "Anatomy", 0.4, ManyToMany),
			edge("REFERS_TO_TRIAL", "Paper", "ClinicalTrial", 0.2, ManyToMany),
			edge("REFERS_TO_PATENT", "Paper", "Patent", 0.15, ManyToMany),
			edge("HAS_FRACTION", "Abstract", "Fraction", 0.9, OneToMany),
			edge("CONTAINS_WORD", "Fraction", "Word", 1.2, ManyToMany),
			edge("PAPER_HAS_ID", "Paper", "PaperID", 1.4, OneToMany),
			edge("AFFILIATION_IN_COUNTRY", "Affiliation", "Country", 0.6, ManyToOne),
			edge("CITATION_OF", "Citation", "Paper", 0.8, ManyToOne),
		},
	}
}

// IYP models the Internet Yellow Pages knowledge graph, the largest
// and most heterogeneous dataset: 86 node types expressed as
// co-occurring combinations of 33 labels, with very many property
// patterns, and 25 edge types. The spec is generated programmatically
// from a fixed seed so it is stable across runs.
func IYP() *Spec {
	rng := rand.New(rand.NewSource(20240101))
	labels := []string{
		"AS", "Organization", "Prefix", "IP", "DomainName", "HostName", "Country",
		"IXP", "Facility", "AtlasProbe", "AtlasMeasurement", "BGPCollector", "Ranking",
		"URL", "AuthoritativeNameServer", "Name", "PeeringLAN", "Tag", "OpaqueID",
		"CaidaIXID", "PeeringdbOrgID", "PeeringdbIXID", "PeeringdbFacID", "PeeringdbNetID",
		"Estimate", "ASDB", "GeoLocation", "Resolver", "Point", "Position", "Registry",
		"RPKIStatus", "IRRStatus",
	}
	propPool := []Prop{
		{Key: "name", Gen: GString}, {Key: "asn", Gen: GInt}, {Key: "prefix", Gen: GString},
		{Key: "country_code", Gen: GString}, {Key: "reference_org", Gen: GString},
		{Key: "reference_time", Gen: GDateWithStrings}, {Key: "af", Gen: GInt},
		{Key: "value", Gen: GFloatWithStrings}, {Key: "rank", Gen: GIntWithFloats},
		{Key: "ext_ref", Gen: GIntWithManyStrings},
		{Key: "hege", Gen: GFloat}, {Key: "visibility", Gen: GFloat}, {Key: "registry", Gen: GString},
		{Key: "status", Gen: GString}, {Key: "descr", Gen: GString}, {Key: "website", Gen: GString},
		{Key: "id", Gen: GInt}, {Key: "lat", Gen: GFloat}, {Key: "lon", Gen: GFloat},
	}
	// 86 node types: each the combination of 1–3 labels with 2–7
	// properties (several optional) drawn from the pool.
	var nodes []NodeSpec
	seen := map[string]bool{}
	for len(nodes) < 86 {
		nl := 1 + rng.Intn(3)
		set := map[string]bool{}
		for len(set) < nl {
			set[labels[rng.Intn(len(labels))]] = true
		}
		var ls []string
		for l := range set {
			ls = append(ls, l)
		}
		sort.Strings(ls)
		key := fmt.Sprint(ls)
		if seen[key] {
			continue
		}
		seen[key] = true
		np := 2 + rng.Intn(6)
		perm := rng.Perm(len(propPool))
		var props []Prop
		for i := 0; i < np; i++ {
			pr := propPool[perm[i]]
			if i >= 1 && rng.Float64() < 0.6 {
				pr.Prob = 0.3 + rng.Float64()*0.6
			} else {
				pr.Prob = 1
			}
			props = append(props, pr)
		}
		nodes = append(nodes, NodeSpec{
			Name:   fmt.Sprintf("T%02d_%s", len(nodes), key),
			Labels: ls,
			Weight: 0.2 + rng.Float64()*2,
			Props:  props,
		})
	}
	edgeLabels := []string{
		"ORIGINATE", "DEPENDS_ON", "MANAGED_BY", "MEMBER_OF", "PEERS_WITH", "LOCATED_IN",
		"COUNTRY", "RANK", "RESOLVES_TO", "ALIAS_OF", "PART_OF", "CATEGORIZED", "ASSIGNED",
		"AVAILABLE", "REGISTERED", "ROUTE_ORIGIN_AUTHORIZATION", "WEBSITE", "NAME",
		"QUERIED_FROM", "TARGET", "CENSORED", "EXTERNAL_ID", "SIBLING_OF", "POPULATION", "BASED_IN",
	}
	var edges []EdgeSpec
	for _, el := range edgeLabels {
		src := nodes[rng.Intn(len(nodes))].Name
		dst := nodes[rng.Intn(len(nodes))].Name
		var props []Prop
		if rng.Float64() < 0.6 {
			props = append(props, o("reference_time", GDate, 0.7))
		}
		if rng.Float64() < 0.3 {
			props = append(props, o("count", GInt, 0.8))
		}
		edges = append(edges, EdgeSpec{
			Name: el, Labels: []string{el}, Src: src, Dst: dst,
			Weight: 0.2 + rng.Float64()*2, Props: props,
		})
	}
	return &Spec{
		Name: "IYP", Real: true,
		DefaultNodes: 4500, DefaultEdges: 12600,
		Nodes: nodes, Edges: edges,
	}
}

// All returns the eight dataset specs in Table 2 order.
func All() []*Spec {
	return []*Spec{POLE(), MB6(), HETIO(), FIB25(), ICIJ(), CORD19(), LDBC(), IYP()}
}

// ByName returns the spec with the given name (case-sensitive), or
// nil.
func ByName(name string) *Spec {
	for _, s := range All() {
		if s.Name == name {
			return s
		}
	}
	return nil
}
