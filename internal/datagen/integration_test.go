package datagen_test

// integration_test.go runs the full PG-HIVE pipeline over every
// generated dataset and asserts end-to-end quality floors — the
// cross-module integration test of the repository.

import (
	"testing"

	"github.com/pghive/pghive/internal/core"
	"github.com/pghive/pghive/internal/datagen"
	"github.com/pghive/pghive/internal/eval"
	"github.com/pghive/pghive/internal/infer"
	"github.com/pghive/pghive/internal/serialize"
)

func TestPipelineOnEveryDataset(t *testing.T) {
	for _, spec := range datagen.All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			d := datagen.Generate(spec, 0.5, 3)
			for _, m := range []core.Method{core.ELSH, core.MinHash} {
				res := core.Discover(d.Graph, core.Options{Method: m, Seed: 3})
				nf := eval.MajorityF1(eval.NodeAssignments(res.NodeAssign), d.NodeTruth)
				ef := eval.MajorityF1(eval.EdgeAssignments(res.EdgeAssign), d.EdgeTruth)
				if nf < 0.9 {
					t.Errorf("%v node F1 = %.3f, want >= 0.9 on clean data", m, nf)
				}
				if ef < 0.9 {
					t.Errorf("%v edge F1 = %.3f, want >= 0.9 on clean data", m, ef)
				}
				// The discovered schema must serialize in all formats
				// without issue.
				if out := serialize.PGSchema(res.Schema, serialize.Strict, spec.Name); len(out) == 0 {
					t.Error("empty STRICT serialization")
				}
				if out := serialize.XSD(res.Schema); len(out) == 0 {
					t.Error("empty XSD serialization")
				}
			}
		})
	}
}

func TestPipelineNoiseFloorEveryDataset(t *testing.T) {
	if testing.Short() {
		t.Skip("noise sweep skipped in -short mode")
	}
	for _, spec := range datagen.All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			base := datagen.Generate(spec, 0.5, 3)
			d := datagen.InjectNoise(base, 0.4, 1.0, 5)
			res := core.Discover(d.Graph, core.Options{Seed: 3})
			nf := eval.MajorityF1(eval.NodeAssignments(res.NodeAssign), d.NodeTruth)
			if nf < 0.9 {
				t.Errorf("node F1 at 40%% noise = %.3f, want >= 0.9 (paper: >0.9 under heavy noise)", nf)
			}
		})
	}
}

// TestSchemaValidatesItsOwnData spot-checks the §4.7 type-completeness
// guarantee end to end: every node's labels and properties are covered
// by its assigned type.
func TestSchemaValidatesItsOwnData(t *testing.T) {
	d := datagen.Generate(datagen.LDBC(), 0.3, 7)
	res := core.Discover(d.Graph, core.Options{Seed: 7})
	infer.Finalize(res.Schema, infer.Options{})
	for i := range d.Graph.Nodes() {
		n := &d.Graph.Nodes()[i]
		ty := res.NodeAssign[n.ID]
		if ty == nil {
			t.Fatalf("node %d unassigned", n.ID)
		}
		for _, l := range n.Labels {
			if ty.Labels[l] <= 0 {
				t.Fatalf("node %d label %q not covered by type %s", n.ID, l, ty.Name())
			}
		}
		for k := range n.Props {
			if ty.Props[k] == nil {
				t.Fatalf("node %d property %q not covered by type %s", n.ID, k, ty.Name())
			}
		}
	}
	for i := range d.Graph.Edges() {
		e := &d.Graph.Edges()[i]
		ty := res.EdgeAssign[e.ID]
		if ty == nil {
			t.Fatalf("edge %d unassigned", e.ID)
		}
		for _, l := range e.Labels {
			if ty.Labels[l] <= 0 {
				t.Fatalf("edge %d label %q not covered by type %s", e.ID, l, ty.Name())
			}
		}
		for k := range e.Props {
			if ty.Props[k] == nil {
				t.Fatalf("edge %d property %q not covered by type %s", e.ID, k, ty.Name())
			}
		}
	}
}

// TestMandatorySoundness verifies §4.7's property-constraint
// guarantee on real pipeline output: every property marked mandatory
// is indeed present in every instance of its type.
func TestMandatorySoundness(t *testing.T) {
	base := datagen.Generate(datagen.CORD19(), 0.4, 11)
	d := datagen.InjectNoise(base, 0.2, 1.0, 13)
	res := core.Discover(d.Graph, core.Options{Seed: 11})
	infer.Finalize(res.Schema, infer.Options{})

	present := map[string]int{} // typeID:key → count
	for i := range d.Graph.Nodes() {
		n := &d.Graph.Nodes()[i]
		ty := res.NodeAssign[n.ID]
		for k := range n.Props {
			present[typeKey(ty.ID, k)]++
		}
	}
	for _, nt := range res.Schema.NodeTypes {
		for k, ps := range nt.Props {
			if ps.Mandatory && present[typeKey(nt.ID, k)] != nt.Instances {
				t.Errorf("type %s property %q marked mandatory but appears in %d/%d instances",
					nt.Name(), k, present[typeKey(nt.ID, k)], nt.Instances)
			}
		}
	}
}

func typeKey(id int, key string) string {
	return string(rune(id)) + ":" + key
}

// TestCardinalitySoundness verifies §4.7's cardinality guarantee:
// inferred maxima are true upper bounds of the observed degrees.
func TestCardinalitySoundness(t *testing.T) {
	d := datagen.Generate(datagen.POLE(), 1, 17)
	res := core.Discover(d.Graph, core.Options{Seed: 17})
	infer.Finalize(res.Schema, infer.Options{})
	for _, et := range res.Schema.EdgeTypes {
		maxOut := et.MaxOutDegree()
		// Recount from the data.
		counts := map[int64]int{}
		for i := range d.Graph.Edges() {
			e := &d.Graph.Edges()[i]
			if res.EdgeAssign[e.ID] == et {
				counts[int64(e.Src)]++
			}
		}
		observed := 0
		for _, c := range counts {
			if c > observed {
				observed = c
			}
		}
		if observed > maxOut {
			t.Errorf("type %s: observed out-degree %d exceeds recorded max %d",
				et.Name(), observed, maxOut)
		}
	}
}
