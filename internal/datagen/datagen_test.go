package datagen

import (
	"testing"

	"github.com/pghive/pghive/internal/pg"
)

func TestAllSpecsGenerate(t *testing.T) {
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			d := Generate(spec, 0.5, 1)
			if d.Graph.NumNodes() == 0 || d.Graph.NumEdges() == 0 {
				t.Fatalf("empty generation: %d nodes, %d edges",
					d.Graph.NumNodes(), d.Graph.NumEdges())
			}
			// Every element has ground truth.
			if len(d.NodeTruth) != d.Graph.NumNodes() {
				t.Errorf("node truth covers %d of %d", len(d.NodeTruth), d.Graph.NumNodes())
			}
			if len(d.EdgeTruth) != d.Graph.NumEdges() {
				t.Errorf("edge truth covers %d of %d", len(d.EdgeTruth), d.Graph.NumEdges())
			}
			// No dangling edges.
			for i := range d.Graph.Edges() {
				e := &d.Graph.Edges()[i]
				if d.Graph.Node(e.Src) == nil || d.Graph.Node(e.Dst) == nil {
					t.Fatalf("dangling edge %d", e.ID)
				}
			}
		})
	}
}

// TestTable2Structure checks each generated dataset reproduces the
// structural multiplicities Table 2 reports: ground-truth type counts,
// label counts, and the type-vs-label inequalities that drive the
// evaluation narratives (multi-label connectomes, shared integration
// labels, edge-label reuse).
func TestTable2Structure(t *testing.T) {
	type want struct {
		nodeTypes, edgeTypes   int
		nodeLabels, edgeLabels int
	}
	wants := map[string]want{
		"POLE":   {11, 17, 11, 16},
		"MB6":    {4, 5, 10, 3},
		"HET.IO": {11, 24, 12, 24},
		"FIB25":  {4, 5, 10, 3},
		"ICIJ":   {5, 14, 6, 14},
		"CORD19": {16, 16, 16, 16},
		"LDBC":   {7, 17, 8, 14},
		"IYP":    {86, 25, 33, 25},
	}
	for _, spec := range All() {
		d := Generate(spec, 1, 7)
		s := d.Stats()
		w, ok := wants[spec.Name]
		if !ok {
			t.Fatalf("missing expectation for %s", spec.Name)
		}
		if s.NodeTypes != w.nodeTypes {
			t.Errorf("%s: node types = %d, want %d", spec.Name, s.NodeTypes, w.nodeTypes)
		}
		if s.EdgeTypes != w.edgeTypes {
			t.Errorf("%s: edge types = %d, want %d", spec.Name, s.EdgeTypes, w.edgeTypes)
		}
		if s.NodeLabels != w.nodeLabels {
			t.Errorf("%s: node labels = %d, want %d", spec.Name, s.NodeLabels, w.nodeLabels)
		}
		if s.EdgeLabels != w.edgeLabels {
			t.Errorf("%s: edge labels = %d, want %d", spec.Name, s.EdgeLabels, w.edgeLabels)
		}
	}
}

func TestPatternHeterogeneity(t *testing.T) {
	// ICIJ and IYP must be far more pattern-heterogeneous than POLE
	// (Table 2: 208 and 1210 node patterns vs 17).
	pole := Generate(POLE(), 1, 3).Stats()
	icij := Generate(ICIJ(), 1, 3).Stats()
	iyp := Generate(IYP(), 1, 3).Stats()
	if icij.NodePatterns <= 2*pole.NodePatterns {
		t.Errorf("ICIJ patterns (%d) should dwarf POLE's (%d)", icij.NodePatterns, pole.NodePatterns)
	}
	if iyp.NodePatterns <= icij.NodePatterns {
		t.Errorf("IYP patterns (%d) should exceed ICIJ's (%d)", iyp.NodePatterns, icij.NodePatterns)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(POLE(), 1, 42)
	b := Generate(POLE(), 1, 42)
	if a.Graph.NumNodes() != b.Graph.NumNodes() || a.Graph.NumEdges() != b.Graph.NumEdges() {
		t.Fatal("generation is not deterministic")
	}
	for i := range a.Graph.Nodes() {
		na, nb := &a.Graph.Nodes()[i], &b.Graph.Nodes()[i]
		if na.LabelToken() != nb.LabelToken() || len(na.Props) != len(nb.Props) {
			t.Fatalf("node %d differs between runs", na.ID)
		}
		for k, v := range na.Props {
			if !nb.Props[k].Equal(v) {
				t.Fatalf("node %d prop %q differs", na.ID, k)
			}
		}
	}
}

func TestScale(t *testing.T) {
	small := Generate(LDBC(), 0.25, 1)
	big := Generate(LDBC(), 1, 1)
	ratio := float64(big.Graph.NumNodes()) / float64(small.Graph.NumNodes())
	if ratio < 3 || ratio > 5 {
		t.Errorf("scale 4x should yield ~4x nodes, got ratio %.2f", ratio)
	}
}

func TestInjectNoiseProperties(t *testing.T) {
	d := Generate(POLE(), 1, 5)
	countProps := func(g *pg.Graph) int {
		n := 0
		for i := range g.Nodes() {
			n += len(g.Nodes()[i].Props)
		}
		return n
	}
	before := countProps(d.Graph)
	noisy := InjectNoise(d, 0.4, 1.0, 9)
	after := countProps(noisy.Graph)
	frac := 1 - float64(after)/float64(before)
	if frac < 0.3 || frac > 0.5 {
		t.Errorf("40%% noise removed %.0f%% of properties", frac*100)
	}
	// Original untouched.
	if countProps(d.Graph) != before {
		t.Error("noise injection mutated the source dataset")
	}
	// Ground truth preserved.
	if len(noisy.NodeTruth) != len(d.NodeTruth) {
		t.Error("noise must not alter ground truth")
	}
}

func TestInjectNoiseLabels(t *testing.T) {
	d := Generate(POLE(), 1, 6)
	half := InjectNoise(d, 0, 0.5, 10)
	labeled := 0
	for i := range half.Graph.Nodes() {
		if len(half.Graph.Nodes()[i].Labels) > 0 {
			labeled++
		}
	}
	frac := float64(labeled) / float64(half.Graph.NumNodes())
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("50%% availability kept %.0f%% of node labels", frac*100)
	}
	none := InjectNoise(d, 0, 0, 11)
	for i := range none.Graph.Nodes() {
		if len(none.Graph.Nodes()[i].Labels) != 0 {
			t.Fatal("0% availability must strip every label")
		}
	}
	for i := range none.Graph.Edges() {
		if len(none.Graph.Edges()[i].Labels) != 0 {
			t.Fatal("0% availability must strip edge labels too")
		}
	}
}

func TestInjectNoiseDeterministic(t *testing.T) {
	d := Generate(MB6(), 0.5, 7)
	a := InjectNoise(d, 0.3, 0.5, 13)
	b := InjectNoise(d, 0.3, 0.5, 13)
	for i := range a.Graph.Nodes() {
		na, nb := &a.Graph.Nodes()[i], &b.Graph.Nodes()[i]
		if len(na.Props) != len(nb.Props) || na.LabelToken() != nb.LabelToken() {
			t.Fatal("noise injection is not deterministic")
		}
	}
}

func TestCardinalityShapes(t *testing.T) {
	d := Generate(LDBC(), 1, 8)
	// HAS_CREATOR is ManyToOne: every Post source has exactly one
	// creator edge.
	srcSeen := map[pg.ID]int{}
	for i := range d.Graph.Edges() {
		e := &d.Graph.Edges()[i]
		if d.EdgeTruth[e.ID] == "HAS_CREATOR(Post)" {
			srcSeen[e.Src]++
		}
	}
	for id, n := range srcSeen {
		if n > 1 {
			t.Fatalf("ManyToOne violated: post %d has %d creators", id, n)
		}
	}
}

func TestMixedValueGenerators(t *testing.T) {
	// GIntWithFloats must actually produce both kinds over many draws.
	d := Generate(ICIJ(), 1, 9)
	kinds := map[pg.Kind]int{}
	for i := range d.Graph.Nodes() {
		n := &d.Graph.Nodes()[i]
		if v, ok := n.Props["internal_id"]; ok {
			kinds[v.Kind()]++
		}
	}
	if kinds[pg.KindInt] == 0 || kinds[pg.KindFloat] == 0 {
		t.Errorf("GIntWithFloats kinds = %v, want both int and float", kinds)
	}
}

func TestByName(t *testing.T) {
	if ByName("POLE") == nil || ByName("IYP") == nil {
		t.Error("ByName lookup failed")
	}
	if ByName("nope") != nil {
		t.Error("unknown name must return nil")
	}
}

func TestIYPSpecStable(t *testing.T) {
	a, b := IYP(), IYP()
	if len(a.Nodes) != len(b.Nodes) || len(a.Edges) != len(b.Edges) {
		t.Fatal("IYP spec must be stable across calls")
	}
	for i := range a.Nodes {
		if a.Nodes[i].Name != b.Nodes[i].Name {
			t.Fatal("IYP node specs differ across calls")
		}
	}
}
