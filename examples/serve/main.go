// Serve demonstrates the concurrent schema service: a pghive.Service
// ingests a social-network dataset batch by batch on one goroutine
// while reader goroutines concurrently watch the published schema
// snapshot grow — lock-free, and never observing a half-merged state.
// Midway through the stream the service is checkpointed, a second
// service is restored from the checkpoint, fed the remaining batches,
// and shown to end bit-identical to the uninterrupted one. Run with:
//
//	go run ./examples/serve
package main

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	pghive "github.com/pghive/pghive"
	"github.com/pghive/pghive/internal/datagen"
)

const (
	scale   = 0.5
	seed    = 42
	batches = 12
	readers = 4
)

func main() {
	d := datagen.Generate(datagen.LDBC(), scale, seed)
	g := d.Graph
	fmt.Printf("dataset: %d nodes + %d edges\n\n", g.NumNodes(), g.NumEdges())
	parts := pghive.SplitBatches(g, batches, newRand())

	// One writer ingests; a pool of readers hammers the published
	// snapshot concurrently. Every snapshot a reader observes is
	// internally consistent — served types always have instances.
	svc := pghive.NewService(pghive.Options{Seed: seed})
	var reads atomic.Int64
	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				snap := svc.Snapshot()
				for _, nt := range snap.Schema.NodeTypes {
					if nt.Instances == 0 {
						panic("reader observed a type with zero instances")
					}
				}
				_ = svc.PGSchema(pghive.Strict, "Live")
				reads.Add(1)
			}
		}()
	}

	var checkpoint bytes.Buffer
	fmt.Printf("%-6s %11s %11s %12s %9s\n", "batch", "node types", "edge types", "snapshot", "time")
	for i, b := range parts {
		bt := svc.Ingest(b.Graph)
		st := svc.Stats()
		fmt.Printf("%-6d %11d %11d %12d %9s\n",
			bt.Index, st.NodeTypes, st.EdgeTypes, st.Snapshot,
			bt.Timing.Discovery().Round(100*time.Microsecond))
		if i == batches/2-1 {
			// Mid-stream checkpoint: the full state (schema,
			// assignments, shape caches, endpoint bookkeeping) goes
			// into one JSON image.
			check(svc.WriteCheckpoint(&checkpoint))
			fmt.Printf("       --- checkpoint after batch %d (%d KiB) ---\n",
				bt.Index, checkpoint.Len()/1024)
		}
	}
	close(done)
	wg.Wait()
	fmt.Printf("\nreaders performed %d consistent snapshot reads during ingestion\n", reads.Load())

	// Crash-recovery: restore a second service from the checkpoint and
	// feed it the batches the first service processed afterwards.
	restored, err := pghive.RestoreService(pghive.Options{Seed: seed}, &checkpoint)
	check(err)
	for _, b := range parts[batches/2:] {
		restored.Ingest(b.Graph)
	}

	a, b := render(svc), render(restored)
	fmt.Printf("restored-from-checkpoint schema identical to uninterrupted run: %v\n", a == b)
	if a != b {
		os.Exit(1)
	}
	fmt.Printf("\n%s", svc.PGSchema(pghive.Strict, "SocialNetwork"))
}

// render fingerprints every serialization of the published schema.
func render(svc *pghive.Service) string {
	return svc.PGSchema(pghive.Strict, "G") + svc.PGSchema(pghive.Loose, "G") +
		svc.XSD() + svc.DOT("G")
}

func newRand() *rand.Rand { return rand.New(rand.NewSource(seed + 21)) }

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}
