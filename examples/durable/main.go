// Durable demonstrates the WAL-backed serving mode end to end: a
// DurableService write-ahead logs every mutation into a data
// directory, the process "dies" (kill -9 style — the instance is
// simply abandoned, no shutdown, no final checkpoint), and a fresh
// OpenDurable over the same directory recovers a state bit-identical
// to the moment of death. Compactions then fold the log incrementally
// — each round writes a small delta run on top of the base image,
// until the chain crosses -max-runs and collapses into a fresh base —
// and a second kill-and-recover proves the manifest-driven path
// (base + runs + WAL tail) too. Run with:
//
//	go run ./examples/durable
package main

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	pghive "github.com/pghive/pghive"
	"github.com/pghive/pghive/internal/datagen"
)

const (
	scale   = 0.4
	seed    = 42
	batches = 10
)

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "durable:", err)
		os.Exit(1)
	}
}

// stateImage serializes a service's full state; byte-equal images
// mean indistinguishable services.
func stateImage(d *pghive.DurableService) []byte {
	var buf bytes.Buffer
	check(d.WriteCheckpoint(&buf))
	return buf.Bytes()
}

func walFiles(dir string) int {
	segs, _ := filepath.Glob(filepath.Join(dir, "wal", "*.wal"))
	return len(segs)
}

func main() {
	dir, err := os.MkdirTemp("", "pghive-durable-*")
	check(err)
	defer os.RemoveAll(dir)

	data := datagen.Generate(datagen.LDBC(), scale, seed)
	parts := pghive.SplitBatches(data.Graph, batches, rand.New(rand.NewSource(7)))
	opts := pghive.Options{Seed: seed}
	// Tiny segments so the walkthrough rotates visibly, and a 2-run
	// chain cap so a fold happens within a few compactions; production
	// uses the defaults (8 MiB segments, 1 min cadence, 6 runs).
	dopts := pghive.DurableOptions{SegmentBytes: 64 << 10, DisableAutoCompact: true, MaxRuns: 2}

	fmt.Printf("data dir: %s\n", dir)
	fmt.Printf("dataset: %d nodes + %d edges in %d batches\n\n", data.Graph.NumNodes(), data.Graph.NumEdges(), batches)

	// Phase 1: ingest the first half durably, then "crash". Every
	// batch was fsynced to the WAL before it was applied, so
	// abandoning the instance without any shutdown loses nothing —
	// exactly what kill -9 at an arbitrary instant leaves behind is
	// covered by the same recovery path (a torn trailing record is
	// truncated away on reopen).
	d1, err := pghive.OpenDurable(dir, opts, dopts)
	check(err)
	start := time.Now()
	for _, b := range parts[:batches/2] {
		_, err := d1.Ingest(b.Graph)
		check(err)
	}
	preCrash := stateImage(d1)
	st := d1.Stats()
	fmt.Printf("phase 1: ingested %d batches (%d nodes, %d edges, %d node types) in %v\n",
		st.Batches, st.Nodes, st.Edges, st.NodeTypes, time.Since(start).Round(time.Millisecond))
	fmt.Printf("         WAL: %d segment file(s), next LSN %d\n", walFiles(dir), d1.DurableStats().WALNextLSN)
	fmt.Printf("         --- kill -9 (no shutdown, no checkpoint) ---\n\n")
	// d1 is abandoned, not closed.

	// Phase 2: recover from the directory alone and compare states.
	d2, err := pghive.OpenDurable(dir, opts, dopts)
	check(err)
	recovered := stateImage(d2)
	fmt.Printf("phase 2: recovered %d batches from WAL replay\n", d2.Stats().Batches)
	fmt.Printf("         recovered state bit-identical to pre-crash state: %v\n\n", bytes.Equal(preCrash, recovered))

	// Phase 3: compact after each remaining batch. Each round writes a
	// delta run — bytes proportional to the batch, not the database —
	// until the chain crosses MaxRuns and folds into a fresh base.
	fmt.Printf("phase 3: one compaction per batch (runs accumulate, then fold at %d)\n", dopts.MaxRuns)
	for _, b := range parts[batches/2 : batches-1] {
		_, err := d2.Ingest(b.Graph)
		check(err)
		segsBefore := walFiles(dir)
		check(d2.Compact())
		ds := d2.DurableStats()
		kind := fmt.Sprintf("run   (chain %d, %5d run bytes)", ds.Runs, ds.RunBytes)
		if ds.Runs == 0 {
			kind = fmt.Sprintf("FOLD  (fresh base at LSN %d)", ds.BaseLSN)
		}
		fmt.Printf("         gen %d: %s  covers LSN %d, WAL segments %d -> %d\n",
			ds.ManifestSeq, kind, ds.CheckpointLSN, segsBefore, walFiles(dir))
	}
	fmt.Println()

	// Phase 4: one more batch after the last round, crash again, and
	// recover through manifest -> base image -> delta runs -> WAL tail.
	_, err = d2.Ingest(parts[batches-1].Graph)
	check(err)
	preCrash2 := stateImage(d2)
	fmt.Printf("phase 4: ingested final batch on top of the run chain\n")
	fmt.Printf("         --- kill -9 again ---\n\n")
	// d2 abandoned too.

	d3, err := pghive.OpenDurable(dir, opts, dopts)
	check(err)
	defer d3.Close()
	final := stateImage(d3)
	st = d3.Stats()
	ds := d3.DurableStats()
	fmt.Printf("phase 5: recovered gen %d (base LSN %d + %d run(s)) + %d-record WAL tail\n",
		ds.ManifestSeq, ds.BaseLSN, ds.Runs, ds.WALNextLSN-1-d3.CheckpointLSN())
	fmt.Printf("         final: %d batches, %d nodes, %d edges, %d node types + %d edge types\n",
		st.Batches, st.Nodes, st.Edges, st.NodeTypes, st.EdgeTypes)
	fmt.Printf("         recovered state bit-identical to pre-crash state: %v\n", bytes.Equal(preCrash2, final))

	if !bytes.Equal(preCrash, recovered) || !bytes.Equal(preCrash2, final) {
		fmt.Fprintln(os.Stderr, "durable: recovery diverged")
		os.Exit(1)
	}
}
