// Quickstart builds the paper's running example (Fig. 1) by hand,
// discovers its schema with PG-HIVE, and prints the STRICT PG-Schema
// declaration. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	pghive "github.com/pghive/pghive"
)

func main() {
	g := pghive.NewGraph()

	// People. Alice has no label — PG-HIVE will merge her into the
	// Person type by structural similarity (paper Example 5).
	bob := g.AddNode([]string{"Person"}, map[string]pghive.Value{
		"name":   pghive.Str("Bob"),
		"gender": pghive.Str("male"),
		"bday":   pghive.ParseLexical("1980-05-02"),
	})
	alice := g.AddNode(nil, map[string]pghive.Value{
		"name":   pghive.Str("Alice"),
		"gender": pghive.Str("female"),
		"bday":   pghive.ParseLexical("1999-12-19"),
	})
	john := g.AddNode([]string{"Person"}, map[string]pghive.Value{
		"name":   pghive.Str("John"),
		"gender": pghive.Str("male"),
		"bday":   pghive.ParseLexical("2005-09-24"),
	})

	// Posts with two different structural patterns, one type.
	post1 := g.AddNode([]string{"Post"}, map[string]pghive.Value{"imgFile": pghive.Str("screenshot.png")})
	post2 := g.AddNode([]string{"Post"}, map[string]pghive.Value{"content": pghive.Str("bazinga!")})

	org := g.AddNode([]string{"Org"}, map[string]pghive.Value{
		"url": pghive.Str("example.com"), "name": pghive.Str("Example")})
	place := g.AddNode([]string{"Place"}, map[string]pghive.Value{"name": pghive.Str("Greece")})

	edge := func(label string, src, dst pghive.ID, props map[string]pghive.Value) {
		if _, err := g.AddEdge([]string{label}, src, dst, props); err != nil {
			log.Fatal(err)
		}
	}
	edge("KNOWS", alice, john, map[string]pghive.Value{"since": pghive.Int(2025)})
	edge("KNOWS", bob, alice, nil)
	edge("LIKES", john, post2, nil)
	edge("LIKES", alice, post1, nil)
	edge("WORKS_AT", bob, org, map[string]pghive.Value{"from": pghive.Int(2000)})
	edge("LOCATED_IN", org, place, nil)

	res := pghive.Discover(g, pghive.Options{Seed: 1})

	fmt.Printf("discovered %d node types and %d edge types:\n\n",
		len(res.Schema.NodeTypes), len(res.Schema.EdgeTypes))
	fmt.Print(pghive.PGSchema(res.Schema, pghive.Strict, "Figure1"))

	person := res.Schema.NodeTypeByToken("Person")
	fmt.Printf("\nPerson has %d instances (the unlabeled Alice merged in).\n", person.Instances)
	for _, key := range person.PropertyKeys() {
		ps := person.Props[key]
		opt := "mandatory"
		if !ps.Mandatory {
			opt = "optional"
		}
		fmt.Printf("  %-8s %-9s %s\n", key, ps.DataType, opt)
	}
}
