// Noisy reproduces the paper's central robustness claim on one
// dataset: as properties are removed and labels disappear, PG-HIVE
// keeps discovering accurate types while the GMMSchema and SchemI
// baselines degrade or stop working entirely. Run with:
//
//	go run ./examples/noisy
package main

import (
	"fmt"

	pghive "github.com/pghive/pghive"
	"github.com/pghive/pghive/internal/baselines/gmm"
	"github.com/pghive/pghive/internal/baselines/schemi"
	"github.com/pghive/pghive/internal/datagen"
	"github.com/pghive/pghive/internal/eval"
)

func main() {
	base := datagen.Generate(datagen.ICIJ(), 1, 9)
	fmt.Printf("ICIJ-style offshore-leaks graph: %d nodes, %d edges\n\n",
		base.Graph.NumNodes(), base.Graph.NumEdges())

	fmt.Printf("%-22s %14s %14s %10s %10s\n",
		"configuration", "PG-HIVE nodes", "PG-HIVE edges", "GMM", "SchemI")
	for _, cfg := range []struct {
		name         string
		noise, avail float64
	}{
		{"clean, full labels", 0, 1},
		{"20% noise", 0.2, 1},
		{"40% noise", 0.4, 1},
		{"40% noise, 50% labels", 0.4, 0.5},
		{"40% noise, no labels", 0.4, 0},
	} {
		d := datagen.InjectNoise(base, cfg.noise, cfg.avail, 11)

		res := pghive.Discover(d.Graph, pghive.Options{Seed: 3})
		nodeF1 := eval.MajorityF1(eval.NodeAssignments(res.NodeAssign), d.NodeTruth)
		edgeF1 := eval.MajorityF1(eval.EdgeAssignments(res.EdgeAssign), d.EdgeTruth)

		gmmCol, schemiCol := "n/a", "n/a"
		if gres, err := gmm.Discover(d.Graph, gmm.Options{Seed: 3}); err == nil {
			gmmCol = fmt.Sprintf("%.3f", eval.MajorityF1(eval.NodeAssignments(gres.NodeAssign), d.NodeTruth))
		}
		if sres, err := schemi.Discover(d.Graph); err == nil {
			schemiCol = fmt.Sprintf("%.3f", eval.MajorityF1(eval.NodeAssignments(sres.NodeAssign), d.NodeTruth))
		}
		fmt.Printf("%-22s %14.3f %14.3f %10s %10s\n", cfg.name, nodeF1, edgeF1, gmmCol, schemiCol)
	}

	fmt.Println("\n\"n/a\" = the baseline refuses partially labeled data (Table 1);")
	fmt.Println("F1* is the majority-based clustering score of §5.")
}
