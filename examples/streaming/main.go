// Streaming demonstrates bounded-memory ingestion: a social-network
// dataset is exported to a JSONL file, then discovered by streaming
// the file back through pghive.DiscoverStream in small batches —
// without ever materializing the whole graph. The per-batch table
// shows that live heap stays flat as batches pass through (the
// stream holds one batch plus label-only endpoint bookkeeping), and
// the final schema is bit-identical to a one-shot Discover over the
// same data. Run with:
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"os"
	"time"

	pghive "github.com/pghive/pghive"
	"github.com/pghive/pghive/internal/datagen"
)

const (
	scale     = 0.5
	seed      = 42
	batchSize = 500
)

func main() {
	// Build the dataset once and write it to disk: from here on the
	// streaming path only ever sees the file.
	d := datagen.Generate(datagen.LDBC(), scale, seed)
	f, err := os.CreateTemp("", "pghive-stream-*.jsonl")
	check(err)
	defer os.Remove(f.Name())
	check(pghive.WriteJSONL(f, d.Graph))
	check(f.Close())
	fi, err := os.Stat(f.Name())
	check(err)
	fmt.Printf("exported %d nodes + %d edges (%d KiB) to %s\n\n",
		d.Graph.NumNodes(), d.Graph.NumEdges(), fi.Size()/1024, f.Name())

	// Stream it back in batches of batchSize elements.
	in, err := os.Open(f.Name())
	check(err)
	defer in.Close()

	fmt.Printf("%-6s %10s %10s %12s %12s %12s\n",
		"batch", "nodes", "edges", "time", "alloc", "live heap")
	res, err := pghive.DiscoverStream(
		pghive.NewJSONLStream(in, batchSize),
		pghive.Options{Seed: seed},
		func(bt pghive.BatchTiming) {
			fmt.Printf("%-6d %10d %10d %12s %11dK %11dK\n",
				bt.Index, bt.Nodes, bt.Edges,
				bt.Timing.Discovery().Round(100*time.Microsecond),
				bt.AllocBytes/1024, bt.HeapLiveBytes/1024)
		})
	check(err)

	fmt.Printf("\nstreamed schema: %d node types, %d edge types\n",
		len(res.Schema.NodeTypes), len(res.Schema.EdgeTypes))

	// The streamed schema is bit-identical to a one-shot run over the
	// fully materialized graph: batching changes memory, not results.
	one := pghive.Discover(d.Graph, pghive.Options{Seed: seed})
	streamed := pghive.PGSchema(res.Schema, pghive.Strict, "G")
	oneShot := pghive.PGSchema(one.Schema, pghive.Strict, "G")
	fmt.Printf("bit-identical to one-shot Discover: %v\n", streamed == oneShot)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "streaming:", err)
		os.Exit(1)
	}
}
