// Replication demonstrates the WAL-shipping topology end to end: a
// durable group-commit leader ships sealed WAL segments and
// checkpoint generations into an object store, two read-only
// followers bootstrap from the newest shipped generation and tail the
// stream, and the program proves the operator-facing contract at
// every step — followers converge to states bit-identical to the
// leader's, refuse writes with the declared read-only reason, and
// when the leader is killed mid-stream they keep serving their last
// snapshot, report growing lag honestly, and catch up bit-identically
// once a recovered leader resumes shipping. Everything runs
// in-process over an in-memory filesystem; swap the Dir backend for
// store.NewHTTP and the pieces are the production deployment
// (`pghive serve -ship-dir` / `-follow`). Run with:
//
//	go run ./examples/replication
package main

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"time"

	pghive "github.com/pghive/pghive"
	"github.com/pghive/pghive/internal/datagen"
	"github.com/pghive/pghive/internal/store"
	"github.com/pghive/pghive/internal/vfs"
)

const (
	scale   = 0.3
	seed    = 42
	batches = 12
)

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "replication:", err)
		os.Exit(1)
	}
}

// stateImage serializes a service's full state; byte-equal images
// mean indistinguishable services.
func stateImage(svc *pghive.Service) []byte {
	var buf bytes.Buffer
	check(svc.WriteCheckpoint(&buf))
	return buf.Bytes()
}

// openLeader starts (or recovers) the durable leader over fs,
// shipping into backend. Group commit is on: concurrent writers
// share WAL fsyncs without weakening the acked-prefix contract.
func openLeader(fs vfs.FS, backend store.Backend) *pghive.DurableService {
	leader, err := pghive.OpenDurable("leader-data", pghive.Options{Seed: seed}, pghive.DurableOptions{
		FS:                 fs,
		DisableAutoCompact: true, // compactions (and thus shipping) are explicit below
		SegmentBytes:       16 << 10,
		GroupCommit:        true,
		ShipTo:             backend,
	})
	check(err)
	return leader
}

// catchUp polls a follower until it reaches the target LSN.
func catchUp(f *pghive.Follower, target uint64) {
	deadline := time.Now().Add(10 * time.Second)
	for f.AppliedLSN() != target || !f.Ready() {
		if time.Now().After(deadline) {
			check(fmt.Errorf("follower stuck at LSN %d, want %d (lag %+v)",
				f.AppliedLSN(), target, f.Lag(context.Background())))
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func main() {
	// The object store both sides share. A leader started with
	// -ship-dir serves exactly this backend at /v1/objects.
	backend := store.NewDir(vfs.NewMemFS(), "/objects")

	leaderFS := vfs.NewMemFS()
	leader := openLeader(leaderFS, backend)

	// Phase 1: ingest, ship, then bring up followers — they bootstrap
	// from the newest consistent shipped generation, not from LSN 0.
	fmt.Println("=== leader + two followers over one object store ===")
	data := datagen.Generate(datagen.LDBC(), scale, seed)
	parts := pghive.SplitBatches(data.Graph, batches, rand.New(rand.NewSource(7)))

	half := len(parts) / 2
	for _, p := range parts[:half] {
		_, err := leader.Ingest(p.Graph)
		check(err)
	}
	check(leader.Compact()) // seals, folds, ships; the manifest publishes the generation

	// (FollowerOptions.LeaderLSN is optional — omitted here, so Lag
	// reports the replica's own position without probing a leader.)
	var followers []*pghive.Follower
	for i := 0; i < 2; i++ {
		f := pghive.NewFollower(pghive.Options{Seed: seed}, backend, pghive.FollowerOptions{
			PollInterval: time.Millisecond,
		})
		f.Start()
		defer f.Close()
		followers = append(followers, f)
	}

	target := leader.DurableStats().WALNextLSN - 1
	for i, f := range followers {
		catchUp(f, target)
		lag := f.Lag(context.Background())
		fmt.Printf("follower %d: ready=%v appliedLSN=%d bootstrapGeneration=%d\n",
			i, lag.Ready, lag.AppliedLSN, lag.BootstrapGeneration)
	}

	// Bit-identity: a follower at LSN n IS the leader at LSN n.
	want := stateImage(leader.Service)
	for i, f := range followers {
		if !bytes.Equal(stateImage(f.Service), want) {
			check(fmt.Errorf("follower %d diverged from leader at LSN %d", i, target))
		}
		fmt.Printf("follower %d: state bit-identical to leader at LSN %d (%d bytes)\n",
			i, target, len(want))
	}

	// Read-only contract: a write against a replica is refused with a
	// machine-readable reason, exactly like a degraded leader would.
	if _, err := followers[0].Ingest(parts[half].Graph); err != nil {
		fmt.Printf("follower 0 refused a write: %v\n", err)
	} else {
		check(fmt.Errorf("follower accepted a write"))
	}

	// Phase 2: kill the leader mid-stream.
	fmt.Println("\n=== kill the leader mid-stream ===")
	for _, p := range parts[half : half+2] {
		_, err := leader.Ingest(p.Graph)
		check(err)
	}
	check(leader.Compact()) // these batches ship...
	for _, p := range parts[half+2 : half+4] {
		_, err := leader.Ingest(p.Graph)
		check(err) // ...these are acked and WAL-durable but NOT yet shipped
	}
	shippedLSN := leader.DurableStats().ShippedLSN
	deadStats := leader.Service.Stats()
	// Abandon the instance: no Close, no final compaction — the
	// kill -9 model. The data directory (leaderFS) survives.
	leader = nil

	for i, f := range followers {
		catchUp(f, shippedLSN)
		fmt.Printf("follower %d: serving at shipped LSN %d while the leader is down (leader died at %d batches)\n",
			i, f.AppliedLSN(), deadStats.Batches)
	}

	// Phase 3: the leader recovers from its directory and resumes
	// shipping; followers catch up without re-bootstrapping.
	fmt.Println("\n=== leader recovers, followers converge ===")
	leader = openLeader(leaderFS, backend)
	for _, p := range parts[half+4:] {
		_, err := leader.Ingest(p.Graph)
		check(err)
	}
	check(leader.Compact())
	defer leader.Close()

	target = leader.DurableStats().WALNextLSN - 1
	want = stateImage(leader.Service)
	for i, f := range followers {
		catchUp(f, target)
		if !bytes.Equal(stateImage(f.Service), want) {
			check(fmt.Errorf("follower %d diverged after leader recovery", i))
		}
		lag := f.Lag(context.Background())
		fmt.Printf("follower %d: caught up bit-identically at LSN %d (fetchFaults=%d, bootstrapFallbacks=%d)\n",
			i, lag.AppliedLSN, lag.FetchFaults, lag.BootstrapFallbacks)
	}

	st := leader.Service.Stats()
	fmt.Printf("\nfinal state everywhere: %d batches, %d nodes, %d edges, %d node types\n",
		st.Batches, st.Nodes, st.Edges, st.NodeTypes)
}
