// Serialization discovers the schema of a biomedical knowledge graph
// and exports it in both interchange formats of §4.5: a LOOSE and a
// STRICT PG-Schema declaration, and an XSD document. Run with:
//
//	go run ./examples/serialization
package main

import (
	"fmt"

	pghive "github.com/pghive/pghive"
	"github.com/pghive/pghive/internal/datagen"
)

func main() {
	d := datagen.Generate(datagen.HETIO(), 0.5, 21)
	res := pghive.Discover(d.Graph, pghive.Options{Seed: 21})

	fmt.Println("=== STRICT PG-Schema (data types, OPTIONAL markers, cardinalities) ===")
	fmt.Print(pghive.PGSchema(res.Schema, pghive.Strict, "Hetionet"))

	fmt.Println("\n=== LOOSE PG-Schema (open content, tolerant of noisy data) ===")
	fmt.Print(pghive.PGSchema(res.Schema, pghive.Loose, "Hetionet"))

	fmt.Println("\n=== XSD (first 40 lines) ===")
	xsd := pghive.XSD(res.Schema)
	lines := 0
	for i := 0; i < len(xsd) && lines < 40; i++ {
		fmt.Print(string(xsd[i]))
		if xsd[i] == '\n' {
			lines++
		}
	}
	fmt.Println("...")
}
