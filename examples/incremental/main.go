// Incremental streams a social-network dataset into PG-HIVE in ten
// random batches (§4.6) and shows the schema growing monotonically:
// every batch can only add labels, properties and types, never remove
// them, and per-batch cost stays flat instead of growing with the
// accumulated graph. Run with:
//
//	go run ./examples/incremental
package main

import (
	"fmt"
	"math/rand"

	pghive "github.com/pghive/pghive"
	"github.com/pghive/pghive/internal/datagen"
)

func main() {
	// A scaled-down LDBC social network (Posts and Comments share the
	// Message label; several edge labels are reused across endpoint
	// pairs).
	d := datagen.Generate(datagen.LDBC(), 0.5, 42)
	fmt.Printf("streaming %d nodes and %d edges in 10 batches\n\n",
		d.Graph.NumNodes(), d.Graph.NumEdges())

	inc := pghive.NewIncremental(pghive.Options{Seed: 42})
	batches := pghive.SplitBatches(d.Graph, 10, rand.New(rand.NewSource(7)))

	fmt.Printf("%-6s %10s %10s %12s %12s\n", "batch", "nodes", "edges", "node types", "batch time")
	for _, b := range batches {
		bt := inc.ProcessBatch(b)
		fmt.Printf("%-6d %10d %10d %12d %12s\n",
			b.Index, b.Graph.NumNodes(), b.Graph.NumEdges(),
			len(inc.Schema().NodeTypes), bt.Timing.Discovery().Round(100_000).String())
	}

	res := inc.Finalize()
	fmt.Printf("\nfinal schema: %d node types, %d edge types\n",
		len(res.Schema.NodeTypes), len(res.Schema.EdgeTypes))
	for _, nt := range res.Schema.NodeTypes {
		fmt.Printf("  %-20s %6d instances, %d properties\n",
			nt.Name(), nt.Instances, len(nt.Props))
	}

	// The incremental result matches a from-scratch run on the full
	// graph: same labeled types, nothing lost (monotonicity, §4.7).
	static := pghive.Discover(d.Graph, pghive.Options{Seed: 42})
	missing := 0
	for _, nt := range static.Schema.NodeTypes {
		if nt.Abstract {
			continue
		}
		if res.Schema.NodeTypeByToken(nt.Token) == nil {
			missing++
		}
	}
	fmt.Printf("\nlabeled node types missing vs a static run: %d\n", missing)
}
