// Integration demonstrates schema discovery over data merged from two
// sources that name the same conceptual entity differently
// (Organization vs Company — the paper's §1 integration example), and
// the semantic label alignment that unifies them (§6 future work,
// implemented with the label-context embeddings). It then validates
// the combined data against the aligned schema. Run with:
//
//	go run ./examples/integration
package main

import (
	"fmt"
	"math/rand"

	pghive "github.com/pghive/pghive"
)

func main() {
	g := buildTwoSourceGraph()
	fmt.Printf("integrated graph: %d nodes, %d edges\n\n", g.NumNodes(), g.NumEdges())

	res := pghive.Discover(g, pghive.Options{Seed: 1})
	fmt.Printf("before alignment: %d node types\n", len(res.Schema.NodeTypes))
	for _, nt := range res.Schema.NodeTypes {
		fmt.Printf("  %-14s %4d instances\n", nt.Name(), nt.Instances)
	}

	merges := pghive.AlignNodeTypes(res.Schema, g, pghive.AlignOptions{})
	fmt.Printf("\nalignment decisions:\n")
	for _, m := range merges {
		fmt.Printf("  %s\n", m)
	}

	fmt.Printf("\nafter alignment: %d node types\n", len(res.Schema.NodeTypes))
	for _, nt := range res.Schema.NodeTypes {
		fmt.Printf("  %-24s %4d instances (labels: %v)\n",
			nt.Name(), nt.Instances, nt.SortedLabels())
	}

	// The combined data validates against the aligned schema.
	report := pghive.Validate(g, res.Schema, pghive.ValidateLoose)
	fmt.Printf("\nvalidation: %d elements checked, %d violations\n",
		report.Checked, len(report.Violations))
}

// buildTwoSourceGraph merges two synthetic sources: source A labels
// employers Organization, source B labels them Company; both use the
// same properties and wire the same WORKS_AT / LOCATED_IN context.
func buildTwoSourceGraph() *pghive.Graph {
	rng := rand.New(rand.NewSource(5))
	g := pghive.NewGraph()
	var employers []pghive.ID
	for i := 0; i < 60; i++ {
		label := "Organization"
		if i%2 == 1 {
			label = "Company"
		}
		employers = append(employers, g.AddNode([]string{label}, map[string]pghive.Value{
			"name":    pghive.Str(fmt.Sprintf("employer-%d", i)),
			"url":     pghive.Str("https://example.com"),
			"founded": pghive.Int(int64(1970 + rng.Intn(50))),
		}))
	}
	var people []pghive.ID
	for i := 0; i < 150; i++ {
		people = append(people, g.AddNode([]string{"Person"}, map[string]pghive.Value{
			"name": pghive.Str(fmt.Sprintf("person-%d", i)),
			"bday": pghive.ParseLexical("1988-04-12"),
		}))
	}
	var places []pghive.ID
	for i := 0; i < 15; i++ {
		places = append(places, g.AddNode([]string{"Place"}, map[string]pghive.Value{
			"name": pghive.Str(fmt.Sprintf("city-%d", i)),
		}))
	}
	for _, p := range people {
		_, _ = g.AddEdge([]string{"WORKS_AT"}, p, employers[rng.Intn(len(employers))],
			map[string]pghive.Value{"from": pghive.Int(int64(2000 + rng.Intn(20)))})
	}
	for _, e := range employers {
		_, _ = g.AddEdge([]string{"LOCATED_IN"}, e, places[rng.Intn(len(places))], nil)
	}
	return g
}
