package pghive

// durable.go makes the serving layer crash-safe: a DurableService
// records every mutation — ingest batch, retract batch, drained
// stream batch — in a segmented write-ahead log (internal/wal)
// *before* applying it, so the state a crash destroys is always
// reconstructible. Startup recovery restores the newest checkpoint
// image and replays the WAL tail above it through exactly the code
// path live writes use, which makes the recovered service
// bit-identical to one that never died (kill -9 at any record
// boundary; a torn trailing record is truncated away).
//
// A background compactor periodically folds the log into a fresh
// checkpoint: it seals the active segment, replays the sealed prefix
// into a private shadow pipeline seeded from the previous checkpoint,
// writes the image to a temporary file, renames it into place, and
// deletes the superseded segments. The compactor shares no lock with
// the write path — it reads only sealed segment files and its own
// shadow state — so writers are never blocked behind a fold, no
// matter how large the log has grown.

import (
	"bytes"
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/pghive/pghive/internal/core"
	"github.com/pghive/pghive/internal/pg"
	"github.com/pghive/pghive/internal/vfs"
	"github.com/pghive/pghive/internal/wal"
)

// WAL record types. Stream batches replay identically to ingest
// batches (a drained batch IS an ingest of its materialized graph);
// the distinct tag records provenance for operators reading a log.
const (
	walRecIngest  byte = 1
	walRecRetract byte = 2
	walRecStream  byte = 3
)

const (
	walSubdir      = "wal"
	ckptPrefix     = "checkpoint-"
	ckptSuffix     = ".ckpt"
	ckptTmpPattern = "*.tmp"
)

// DurableOptions tunes the durability layer of a DurableService.
type DurableOptions struct {
	// SegmentBytes is the WAL segment rotation threshold (default
	// 8 MiB). Smaller segments mean finer-grained compaction.
	SegmentBytes int64
	// NoSync skips the per-append fsync: still safe against process
	// crashes (kill -9), not against power loss.
	NoSync bool
	// CompactInterval is the background compaction cadence (default
	// 1 minute). Each round folds every sealed WAL segment into a
	// checkpoint image and deletes the segments it supersedes.
	CompactInterval time.Duration
	// DisableAutoCompact turns the background compactor off; call
	// Compact explicitly instead.
	DisableAutoCompact bool
	// OnCompactError observes background compaction failures (the
	// compactor retries on its next tick either way). Optional.
	OnCompactError func(error)
	// FS is the filesystem the data directory lives on; nil selects
	// the real OS. Fault-injection tests substitute vfs.MemFS /
	// vfs.InjectFS to prove recovery survives hostile disks.
	FS vfs.FS
}

func (o DurableOptions) withDefaults() DurableOptions {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = wal.DefaultSegmentBytes
	}
	if o.CompactInterval <= 0 {
		o.CompactInterval = time.Minute
	}
	return o
}

// DurableService is a Service whose every mutation is write-ahead
// logged to a data directory. The read side (Snapshot, Schema, Stats,
// Validate, renders) is the embedded Service's — lock-free against
// the published snapshot. The write side appends to the WAL first and
// returns an error when the log cannot be made durable; on success
// the mutation is applied and published exactly as on a plain
// Service.
//
// The data directory holds the WAL segments (wal/*.wal) and the
// newest checkpoint image (checkpoint-<lsn>.ckpt, written atomically
// via temp file + rename). OpenDurable recovers from both.
type DurableService struct {
	*Service
	dir   string
	fs    vfs.FS
	log   *wal.Log
	dopts DurableOptions

	// compactMu serializes compaction rounds and guards the
	// checkpoint bookkeeping below. The write path never takes it.
	compactMu sync.Mutex
	ckptLSN   uint64
	ckptPath  string

	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
	closeErr  error

	// compactTestHook, when non-nil, runs once per compaction round
	// after the fold target is chosen and before any fold work — the
	// point where the compactor is provably holding no lock a writer
	// needs. Tests park the compactor here and assert writes proceed.
	compactTestHook func()
}

// OpenDurable opens (or creates) a durable service rooted at dir:
// restore the newest checkpoint, replay the WAL tail above it, and
// resume serving bit-identical to the process that wrote the
// directory. opts must match the options of the run that produced the
// directory (like ResumeFromCheckpoint, the files do not store them).
func OpenDurable(dir string, opts Options, dopts DurableOptions) (*DurableService, error) {
	dopts = dopts.withDefaults()
	fsys := vfs.OrOS(dopts.FS)
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("pghive: durable: %w", err)
	}
	// Leftover temporaries from an interrupted atomic checkpoint
	// write carry no state (the rename never happened).
	if tmps, err := fsys.Glob(filepath.Join(dir, ckptTmpPattern)); err == nil {
		for _, t := range tmps {
			fsys.Remove(t)
		}
	}

	ckptPath, ckptLSN, err := newestCheckpoint(fsys, dir)
	if err != nil {
		return nil, err
	}
	rp, after, err := newReplayer(opts, fsys, ckptPath)
	if err != nil {
		return nil, err
	}
	if ckptPath != "" && after != ckptLSN {
		return nil, fmt.Errorf("pghive: durable: checkpoint %s covers WAL LSN %d, file name says %d", ckptPath, after, ckptLSN)
	}

	log, err := wal.Open(filepath.Join(dir, walSubdir), wal.Options{
		SegmentBytes: dopts.SegmentBytes,
		NoSync:       dopts.NoSync,
		MinLSN:       after + 1,
		FS:           dopts.FS,
	})
	if err != nil {
		return nil, err
	}
	if err := log.Replay(after, rp.apply); err != nil {
		log.Close()
		return nil, err
	}
	// Segments fully folded into the restored checkpoint may survive
	// a crash between checkpoint rename and pruning; finish the job.
	if _, err := log.Prune(after); err != nil {
		log.Close()
		return nil, err
	}

	svc := newService(opts, rp.inc, rp.resolver)
	svc.nextEdgeID = rp.nextEdgeID
	d := &DurableService{
		Service:  svc,
		dir:      dir,
		fs:       fsys,
		log:      log,
		dopts:    dopts,
		ckptLSN:  after,
		ckptPath: ckptPath,
		stop:     make(chan struct{}),
	}
	if !dopts.DisableAutoCompact {
		d.done = make(chan struct{})
		go d.compactLoop()
	}
	return d, nil
}

// Dir returns the service's data directory.
func (d *DurableService) Dir() string { return d.dir }

// DurabilityError marks a write rejected because it could not be made
// durable (WAL encode/append/sync failure) — a server-side fault the
// caller may retry, as opposed to a malformed input. The service state
// is unchanged when one is returned.
type DurabilityError struct{ Err error }

func (e *DurabilityError) Error() string { return e.Err.Error() }
func (e *DurabilityError) Unwrap() error { return e.Err }

// append serializes g as JSONL and logs it as one WAL record. Callers
// must hold the service write lock so the log order equals the apply
// order — replay preserves exactly that order. Failures are wrapped
// in DurabilityError.
func (d *DurableService) append(t byte, g *Graph) error {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, g); err != nil {
		return &DurabilityError{Err: fmt.Errorf("pghive: durable: encode batch: %w", err)}
	}
	if _, err := d.log.Append(t, buf.Bytes()); err != nil {
		return &DurabilityError{Err: err}
	}
	return nil
}

// Ingest write-ahead logs the batch, then runs it through the
// pipeline and publishes a fresh snapshot. On error the log and the
// served state are both unchanged.
func (d *DurableService) Ingest(g *Graph) (BatchTiming, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.append(walRecIngest, g); err != nil {
		return BatchTiming{}, err
	}
	return d.ingestLocked(g), nil
}

// Retract write-ahead logs the retraction, then applies it (see
// Service.Retract).
func (d *DurableService) Retract(g *Graph) (BatchTiming, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.append(walRecRetract, g); err != nil {
		return BatchTiming{}, err
	}
	return d.retractLocked(g), nil
}

// DrainStream feeds every batch of the stream through the pipeline,
// write-ahead logging each materialized batch before applying it, so
// a crash mid-stream loses at most the batch being appended — every
// earlier batch replays on recovery. Like Service.DrainStream the
// write lock is held for the whole drain and CSV streams are adopted
// into the service's edge-ID and resolver state.
func (d *DurableService) DrainStream(r StreamReader, onBatch func(BatchTiming)) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.drainLocked(r, onBatch, func(g *Graph) error {
		return d.append(walRecStream, g)
	})
}

// Compact folds every sealed WAL segment into a fresh checkpoint
// image and deletes the superseded segments. It first seals the
// active segment, so a compaction captures everything appended before
// the call. The fold runs entirely against a private shadow pipeline
// restored from the previous checkpoint — no service lock is taken,
// so concurrent writers (and readers) proceed at full speed. Safe to
// call concurrently with writes; rounds serialize among themselves.
func (d *DurableService) Compact() error {
	d.compactMu.Lock()
	defer d.compactMu.Unlock()

	if err := d.log.Rotate(); err != nil {
		return err
	}
	sealed := d.log.Sealed()
	var target uint64
	for _, seg := range sealed {
		if seg.Last > target {
			target = seg.Last
		}
	}
	if target <= d.ckptLSN {
		// Nothing new sealed since the last fold; still prune any
		// already-covered segments a crash may have left behind.
		_, err := d.log.Prune(d.ckptLSN)
		return err
	}
	if d.compactTestHook != nil {
		d.compactTestHook()
	}

	// Shadow replay: previous checkpoint + sealed records up to the
	// target, through the same apply path recovery uses. The bound
	// keeps the fold off the active segment entirely — concurrent
	// appends are never even read.
	rp, after, err := newReplayer(d.opts, d.fs, d.ckptPath)
	if err != nil {
		return err
	}
	if err := d.log.ReplayRange(after, target, rp.apply); err != nil {
		return err
	}

	path := checkpointPath(d.dir, target)
	err = rp.inc.WriteCheckpointFile(d.fs, path, &core.CheckpointExtras{
		Resolver:   rp.resolver,
		NextEdgeID: rp.nextEdgeID,
		WALSeq:     target,
	})
	if err != nil {
		return err
	}

	// The new image supersedes older images and every sealed segment
	// it folded; failures past this point leave extra files a later
	// round (or OpenDurable) removes, never an unrecoverable state.
	prev := d.ckptPath
	d.ckptLSN, d.ckptPath = target, path
	if prev != "" && prev != path {
		d.fs.Remove(prev)
	}
	_, err = d.log.Prune(target)
	return err
}

// CheckpointLSN returns the WAL sequence number covered by the newest
// checkpoint image (zero before the first compaction).
func (d *DurableService) CheckpointLSN() uint64 {
	d.compactMu.Lock()
	defer d.compactMu.Unlock()
	return d.ckptLSN
}

// DurableStats describes the durability state of the data directory.
type DurableStats struct {
	// Dir is the data directory.
	Dir string `json:"dir"`
	// CheckpointLSN is the WAL LSN covered by the newest checkpoint.
	CheckpointLSN uint64 `json:"checkpointLSN"`
	// WALNextLSN is the sequence number the next mutation will carry;
	// NextLSN-1-CheckpointLSN records replay on recovery today.
	WALNextLSN uint64 `json:"walNextLSN"`
	// WALSealedSegments / WALSealedBytes count the sealed segments
	// waiting for compaction.
	WALSealedSegments int   `json:"walSealedSegments"`
	WALSealedBytes    int64 `json:"walSealedBytes"`
	// WALBroken reports a WAL that refuses writes because a failed
	// append could not be rolled back; the service still serves reads
	// and the directory still recovers, but the last failed record's
	// durability is indeterminate until then.
	WALBroken bool `json:"walBroken"`
}

// DurableStats snapshots the durability counters.
func (d *DurableService) DurableStats() DurableStats {
	st := DurableStats{Dir: d.dir, CheckpointLSN: d.CheckpointLSN(), WALNextLSN: d.log.NextLSN(), WALBroken: d.log.Broken()}
	for _, seg := range d.log.Sealed() {
		st.WALSealedSegments++
		st.WALSealedBytes += seg.Bytes
	}
	return st
}

// Close stops the background compactor and closes the WAL. The state
// is already durable — close performs no final fold; reopening the
// directory recovers everything.
func (d *DurableService) Close() error {
	d.closeOnce.Do(func() {
		close(d.stop)
		if d.done != nil {
			<-d.done
		}
		d.compactMu.Lock()
		defer d.compactMu.Unlock()
		d.mu.Lock()
		defer d.mu.Unlock()
		d.closeErr = d.log.Close()
	})
	return d.closeErr
}

// compactLoop runs Compact on the configured cadence until Close.
func (d *DurableService) compactLoop() {
	defer close(d.done)
	t := time.NewTicker(d.dopts.CompactInterval)
	defer t.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-t.C:
			if err := d.Compact(); err != nil && d.dopts.OnCompactError != nil {
				d.dopts.OnCompactError(err)
			}
		}
	}
}

// walReplayer folds WAL records into an incremental pipeline plus the
// serving-layer state that lives beside it (endpoint bookkeeping and
// the edge-ID watermark). Recovery and the compactor's shadow fold
// both run on it, and its apply rules are shared with the live write
// path (trackGraph / ProcessBatch / RetractBatch in the same order),
// which is what makes replay bit-identical to the logged run.
type walReplayer struct {
	inc        *Incremental
	resolver   *Graph
	nextEdgeID ID
}

// newReplayer builds a replayer positioned at a checkpoint image (or
// at the empty state when ckptPath is ""), returning the WAL LSN the
// image covers.
func newReplayer(opts Options, fsys vfs.FS, ckptPath string) (*walReplayer, uint64, error) {
	rp := &walReplayer{}
	var after uint64
	if ckptPath == "" {
		rp.inc = NewIncremental(opts)
	} else {
		inc, extras, err := core.LoadCheckpoint(fsys, opts, ckptPath)
		if err != nil {
			return nil, 0, fmt.Errorf("pghive: durable: restore %s: %w", ckptPath, err)
		}
		rp.inc = inc
		rp.resolver = extras.Resolver
		rp.nextEdgeID = extras.NextEdgeID
		after = extras.WALSeq
	}
	if rp.resolver == nil {
		rp.resolver = pg.NewGraph()
		rp.resolver.AllowDanglingEdges(true)
	}
	return rp, after, nil
}

// apply folds one WAL record.
func (rp *walReplayer) apply(rec wal.Record) error {
	g, err := ReadJSONL(bytes.NewReader(rec.Payload), true)
	if err != nil {
		return fmt.Errorf("pghive: durable: wal record %d: %w", rec.LSN, err)
	}
	switch rec.Type {
	case walRecIngest, walRecStream:
		trackGraph(rp.resolver, g, &rp.nextEdgeID)
		rp.inc.ProcessBatch(&Batch{Graph: g, Resolver: rp.resolver, Index: rp.inc.Batches() + 1})
	case walRecRetract:
		rp.inc.RetractBatch(&Batch{Graph: g, Resolver: rp.resolver})
		nodes := g.Nodes()
		for i := range nodes {
			rp.resolver.RemoveNode(nodes[i].ID)
		}
	default:
		return fmt.Errorf("pghive: durable: wal record %d has unknown type %d", rec.LSN, rec.Type)
	}
	return nil
}

// checkpointPath names the image covering WAL LSNs up to lsn.
func checkpointPath(dir string, lsn uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%020d%s", ckptPrefix, lsn, ckptSuffix))
}

// newestCheckpoint locates the image with the highest covered LSN
// ("" when the directory has none).
func newestCheckpoint(fsys vfs.FS, dir string) (path string, lsn uint64, err error) {
	names, err := fsys.Glob(filepath.Join(dir, ckptPrefix+"*"+ckptSuffix))
	if err != nil {
		return "", 0, fmt.Errorf("pghive: durable: %w", err)
	}
	sort.Strings(names)
	for i := len(names) - 1; i >= 0; i-- {
		base := filepath.Base(names[i])
		num := strings.TrimSuffix(strings.TrimPrefix(base, ckptPrefix), ckptSuffix)
		n, perr := strconv.ParseUint(num, 10, 64)
		if perr != nil {
			continue // not one of ours
		}
		return names[i], n, nil
	}
	return "", 0, nil
}
