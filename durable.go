package pghive

// durable.go makes the serving layer crash-safe: a DurableService
// records every mutation — ingest batch, retract batch, drained
// stream batch — in a segmented write-ahead log (internal/wal)
// *before* applying it, so the state a crash destroys is always
// reconstructible. Startup recovery restores the newest consistent
// checkpoint generation and replays the WAL tail above it through
// exactly the code path live writes use, which makes the recovered
// service bit-identical to one that never died (kill -9 at any record
// boundary; a torn trailing record is truncated away).
//
// Checkpoints are LSM-structured (internal/runfile): a generation is
// a base image plus an ordered chain of immutable, checksummed delta
// runs, named by an atomically-swapped manifest. The background
// compactor folds only the WAL records sealed since the previous fold
// into a run — the state diff of that span (core.ImageDelta) — so
// steady-state compaction IO is proportional to what changed, not to
// total state. When the chain grows past DurableOptions.MaxRuns or
// accumulated tombstones cross MaxTombstoneRatio of the base, the
// round folds base+runs+delta into a fresh base image instead
// (a leveled merge with one level: base). Recovery reads the newest
// manifest that validates, loads the base, merges the runs in order,
// and replays the WAL tail — and because each generation's WAL floor
// is the PREVIOUS generation's covered LSN, a newest generation torn
// by a crash on a lying disk falls back one generation and replays
// the retained records to the identical state, loudly counting the
// fallback in DurableStats. The compactor shares no lock with the
// write path — it reads only sealed segment files and its own shadow
// state — so writers are never blocked behind a fold, no matter how
// large the log has grown.
//
// Files a generation no longer references — superseded base images,
// folded-away runs, old manifests, interrupted temporaries — are
// garbage-collected by a sweep at startup and after every compaction;
// removal failures are surfaced in DurableStats (GCFailures /
// LastGCError) and retried on the next sweep, never silently dropped.
//
// Two robustness layers ride on top of durability:
//
// Read-only degradation. When the WAL declares itself broken (a
// failed append could not be rolled back) or the disk is full
// (ENOSPC), every further write would either fail anyway or risk
// compounding the damage — so the service declares read-only mode:
// reads keep serving the last published snapshot, writes fail fast
// with a machine-readable ReadOnlyError, and DurableStats exposes the
// state. A successful compaction (which frees superseded segments)
// re-arms a disk-full service automatically; Rearm re-opens the log
// from disk and re-arms any degradation, including a broken WAL.
//
// Idempotency keys. A write submitted with a key is applied at most
// once per key retention window: the key travels inside the WAL
// record, so replay — recovery after a crash, the compactor's shadow
// fold, and Rearm's catch-up — rebuilds the applied-key set from the
// same bytes that rebuild the state. A client that timed out or got
// a 5xx can therefore retry the same key blindly; if the first
// attempt was applied (even if the ack was lost to a crash), the
// retry reports "replayed" instead of double-applying.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"slices"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/pghive/pghive/internal/core"
	"github.com/pghive/pghive/internal/pg"
	"github.com/pghive/pghive/internal/runfile"
	"github.com/pghive/pghive/internal/store"
	"github.com/pghive/pghive/internal/vfs"
	"github.com/pghive/pghive/internal/wal"
)

// WAL record types. Stream batches replay identically to ingest
// batches (a drained batch IS an ingest of its materialized graph);
// the distinct tag records provenance for operators reading a log.
// Keyed variants prefix the payload with the write's idempotency key
// (u8 length + bytes), so the applied-key set is reconstructible from
// the log alone.
const (
	walRecIngest       byte = 1
	walRecRetract      byte = 2
	walRecStream       byte = 3
	walRecIngestKeyed  byte = 4
	walRecRetractKeyed byte = 5
)

const (
	walSubdir      = "wal"
	ckptPrefix     = "checkpoint-"
	ckptSuffix     = ".ckpt"
	ckptTmpPattern = "*.tmp"
)

// MaxIdempotencyKeyLen bounds an idempotency key: the key is encoded
// in the WAL record behind a one-byte length.
const MaxIdempotencyKeyLen = 255

// Declared read-only reasons (DurableService.Degraded,
// DurableStats.ReadOnlyReason).
const (
	// DegradeWALBroken: a failed WAL append could not be rolled back;
	// the log refuses all appends until re-armed (see wal.Log.Broken).
	DegradeWALBroken = "wal-broken"
	// DegradeDiskFull: an append failed with ENOSPC. Compaction (which
	// deletes superseded segments) re-arms this state automatically.
	DegradeDiskFull = "disk-full"
)

// DurableOptions tunes the durability layer of a DurableService.
type DurableOptions struct {
	// SegmentBytes is the WAL segment rotation threshold (default
	// 8 MiB). Smaller segments mean finer-grained compaction.
	SegmentBytes int64
	// NoSync skips the per-append fsync: still safe against process
	// crashes (kill -9), not against power loss.
	NoSync bool
	// CompactInterval is the background compaction cadence (default
	// 1 minute). Each round folds every sealed WAL segment into a
	// delta run (or a fresh base image, see MaxRuns) and prunes the
	// segments below the manifest's WAL floor.
	CompactInterval time.Duration
	// DisableAutoCompact turns the background compactor off; call
	// Compact explicitly instead.
	DisableAutoCompact bool
	// OnCompactError observes background compaction failures (the
	// compactor retries on its next tick either way). Optional.
	OnCompactError func(error)
	// MaxIdempotencyKeys bounds the retained applied-key set (default
	// 65536). When full, the oldest key is forgotten — a retry older
	// than the whole retention window can then re-apply, so clients
	// should retry promptly, not days later.
	MaxIdempotencyKeys int
	// MaxRuns bounds the delta-run chain length: a compaction that
	// would push the chain past it folds base + runs + new delta into
	// a fresh base image instead (default 6). Longer chains mean less
	// fold IO but more files to merge at recovery.
	MaxRuns int
	// MaxTombstoneRatio forces a fold when the chain's accumulated
	// deletions exceed this fraction of the base image's element
	// count (default 0.5): past it, runs are mostly paying to
	// remember what no longer exists.
	MaxTombstoneRatio float64
	// FS is the filesystem the data directory lives on; nil selects
	// the real OS. Fault-injection tests substitute vfs.MemFS /
	// vfs.InjectFS to prove recovery survives hostile disks.
	FS vfs.FS
	// GroupCommit routes writes through a committer goroutine that
	// coalesces concurrent appends into shared fsyncs (up to
	// GroupCommitMaxBatch acknowledgments per flush). The durability
	// contract is unchanged — no write is acknowledged before the
	// fsync covering its record returns — only the fsync count drops
	// under concurrency. Off by default.
	GroupCommit bool
	// GroupCommitMaxBatch bounds one commit group (default 64).
	GroupCommitMaxBatch int
	// ShipTo, when non-nil, enables WAL shipping: sealed segments and
	// checkpoint generations are uploaded to the backend after every
	// compaction so followers can bootstrap and tail. While set, local
	// pruning and GC never reclaim artifacts the backend does not yet
	// hold (see Manifest.ShippedLSN).
	ShipTo store.Backend
}

func (o DurableOptions) withDefaults() DurableOptions {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = wal.DefaultSegmentBytes
	}
	if o.CompactInterval <= 0 {
		o.CompactInterval = time.Minute
	}
	if o.MaxIdempotencyKeys <= 0 {
		o.MaxIdempotencyKeys = 65536
	}
	if o.MaxRuns <= 0 {
		o.MaxRuns = 6
	}
	if o.MaxTombstoneRatio <= 0 {
		o.MaxTombstoneRatio = 0.5
	}
	if o.GroupCommitMaxBatch <= 0 {
		o.GroupCommitMaxBatch = 64
	}
	return o
}

// DurableService is a Service whose every mutation is write-ahead
// logged to a data directory. The read side (Snapshot, Schema, Stats,
// Validate, renders) is the embedded Service's — lock-free against
// the published snapshot, and available even in read-only degraded
// mode. The write side appends to the WAL first and returns an error
// when the log cannot be made durable; on success the mutation is
// applied and published exactly as on a plain Service.
//
// The data directory holds the WAL segments (wal/*.wal), base images
// (checkpoint-<lsn>.ckpt), delta runs (run-<from>-<to>.run) and the
// manifests naming consistent generations (manifest-<seq>.mft) — all
// written atomically via temp file + rename. OpenDurable recovers
// from the newest generation that validates.
type DurableService struct {
	*Service
	dir   string
	fs    vfs.FS
	log   atomic.Pointer[wal.Log]
	dopts DurableOptions

	// appliedLSN is the LSN of the last WAL record whose mutation the
	// live state has absorbed. Guarded by mu. Rearm replays records
	// above it, which is what reconciles the live state with a frame
	// that survived a rolled-back append.
	appliedLSN uint64

	// keys is the applied idempotency-key set (internally locked).
	keys *idemStore

	// degradedReason, when non-nil, declares read-only mode and why.
	// Set by the write path on unrecoverable append failures; cleared
	// by Rearm and by compaction when the log is still writable.
	degradedReason atomic.Pointer[string]

	// compactMu serializes compaction rounds (and Rearm) and guards
	// the checkpoint-generation bookkeeping below. The write path
	// never takes it.
	compactMu sync.Mutex
	// man is the current generation (never nil; a synthesized Seq-0
	// manifest stands in for a legacy or empty directory). prevMan is
	// the previous generation, whose files the sweep keeps because
	// the WAL floor deliberately permits falling back to it.
	man     *runfile.Manifest
	prevMan *runfile.Manifest
	// manSeq is the highest generation number observed on disk, valid
	// or not — the floor for allocating the next one, so a corrupt
	// lingering manifest can never outrank a fresh one.
	manSeq uint64
	// fallbacks counts the generations recovery had to skip (corrupt
	// manifest, torn base or run) before one validated.
	fallbacks int

	// gcFailures / lastGCErr surface sweep removal failures; the next
	// sweep retries the same files.
	gcFailures atomic.Int64
	lastGCErr  atomic.Pointer[string]

	// ship, when non-nil, tracks what the shipping backend durably
	// holds (see ship.go). Guarded by compactMu.
	ship *shipper

	// commitCh / commitDone exist only with DurableOptions.GroupCommit:
	// the committer goroutine's queue and exit signal (see
	// groupcommit.go).
	commitCh   chan *commitReq
	commitDone chan struct{}

	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
	closeErr  error

	// compactTestHook, when non-nil, runs once per compaction round
	// after the fold target is chosen and before any fold work — the
	// point where the compactor is provably holding no lock a writer
	// needs. Tests park the compactor here and assert writes proceed.
	compactTestHook func()
}

// wal returns the current write-ahead log. The pointer is atomic only
// because Rearm swaps in a re-opened log while readers (DurableStats)
// may be probing the old one.
func (d *DurableService) wal() *wal.Log { return d.log.Load() }

// OpenDurable opens (or creates) a durable service rooted at dir:
// restore the newest checkpoint generation (manifest → base image →
// delta runs in order), replay the WAL tail above it, and resume
// serving bit-identical to the process that wrote the directory.
// When the newest generation does not validate — a manifest, base or
// run torn by a crash the atomic-write protocol could not mask (a
// lying disk) — recovery falls back to the previous generation, whose
// WAL records were deliberately retained, and reports the skip in
// DurableStats.RecoveryFallbacks. opts must match the options of the
// run that produced the directory (like ResumeFromCheckpoint, the
// files do not store them).
func OpenDurable(dir string, opts Options, dopts DurableOptions) (*DurableService, error) {
	dopts = dopts.withDefaults()
	fsys := vfs.OrOS(dopts.FS)
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("pghive: durable: %w", err)
	}

	rec, err := recoverDurable(dir, opts, dopts, fsys)
	if err != nil {
		return nil, err
	}
	svc := newService(opts, rec.rp.inc, rec.rp.resolver)
	svc.nextEdgeID = rec.rp.nextEdgeID
	d := &DurableService{
		Service:    svc,
		dir:        dir,
		fs:         fsys,
		dopts:      dopts,
		appliedLSN: rec.log.NextLSN() - 1,
		keys:       rec.rp.keys,
		man:        rec.man,
		prevMan:    rec.prev,
		manSeq:     rec.maxSeq,
		fallbacks:  rec.fallbacks,
		stop:       make(chan struct{}),
	}
	d.log.Store(rec.log)
	if dopts.ShipTo != nil {
		// The persisted watermark keeps the prune gate honest before
		// the first shipping round of this incarnation completes.
		d.ship = &shipper{backend: dopts.ShipTo, watermark: rec.man.ShippedLSN}
	}
	// Segments below the generation's WAL floor may survive a crash
	// between manifest swap and pruning; finish the job (gated by the
	// ship watermark — never reclaim what the backend does not hold),
	// then sweep the files no kept generation references (stale
	// images, orphaned runs, superseded manifests, temp residue).
	if _, err := rec.log.Prune(d.pruneFloorLocked(rec.man.WALFloor)); err != nil {
		_ = rec.log.Close()
		return nil, err
	}
	d.compactMu.Lock()
	d.sweepLocked()
	_ = d.shipRoundLocked(context.Background()) // best effort; retried each compaction
	d.compactMu.Unlock()
	if dopts.GroupCommit {
		d.commitCh = make(chan *commitReq, 4*dopts.GroupCommitMaxBatch)
		d.commitDone = make(chan struct{})
		go d.commitLoop()
	}
	if !dopts.DisableAutoCompact {
		d.done = make(chan struct{})
		go d.compactLoop()
	}
	return d, nil
}

// recovered is the outcome of recoverDurable: a replayer holding the
// recovered state, the opened log, and the generation bookkeeping.
type recovered struct {
	rp        *walReplayer
	log       *wal.Log
	man       *runfile.Manifest
	prev      *runfile.Manifest
	maxSeq    uint64
	fallbacks int
}

// candidate is one recovery starting point, newest first: a manifest
// generation, a legacy bare checkpoint image (pre-manifest layout),
// or the empty state (fresh directory).
type candidate struct {
	man       *runfile.Manifest // manifest generation, or nil
	legacy    string            // legacy image path, or ""
	legacyLSN uint64
}

// synth builds the in-memory manifest standing in for a non-manifest
// candidate; elems is the loaded base image's element count.
func (c candidate) synth(elems int) *runfile.Manifest {
	m := &runfile.Manifest{Version: runfile.ManifestVersion}
	if c.legacy != "" {
		m.Base = filepath.Base(c.legacy)
		m.BaseLSN = c.legacyLSN
		m.BaseElements = elems
		m.WALFloor = c.legacyLSN
	}
	return m
}

// recoverDurable walks the candidate generations newest-first until
// one fully validates AND its WAL tail replays with LSN continuity.
// Every skipped candidate is remembered; if none survives, the joined
// notes become the error — recovery fails loudly, it never serves a
// silently diverged state.
func recoverDurable(dir string, opts Options, dopts DurableOptions, fsys vfs.FS) (*recovered, error) {
	manifests, maxSeq, err := runfile.ListManifests(fsys, dir)
	if err != nil {
		return nil, fmt.Errorf("pghive: durable: %w", err)
	}
	var cands []candidate
	var notes []string
	for _, p := range manifests {
		m, merr := runfile.ReadManifest(fsys, p)
		if merr != nil {
			notes = append(notes, merr.Error())
			continue
		}
		cands = append(cands, candidate{man: m})
	}
	legacy, err := legacyCheckpoints(fsys, dir)
	if err != nil {
		return nil, err
	}
	if len(cands) == 0 {
		// Pre-manifest layout: bare images, newest first. A directory
		// with no manifest and no image at all recovers from the empty
		// state — but a directory whose every image is corrupt does
		// NOT silently restart empty; it fails below with the notes.
		for _, lc := range legacy {
			cands = append(cands, candidate{legacy: lc.path, legacyLSN: lc.lsn})
		}
		if len(cands) == 0 && len(notes) == 0 {
			cands = append(cands, candidate{})
		}
	}

	for i, c := range cands {
		rec, cerr := tryCandidate(dir, opts, dopts, fsys, c)
		if cerr != nil {
			var hard *recoveryHardError
			if errors.As(cerr, &hard) {
				return nil, hard.err
			}
			notes = append(notes, cerr.Error())
			continue
		}
		rec.maxSeq = max(maxSeq, rec.man.Seq)
		rec.fallbacks = len(notes)
		// The next-older candidate (if any) is the generation the WAL
		// floor was chosen to protect; keep its files for fallback.
		for _, p := range cands[i+1:] {
			if p.man != nil {
				rec.prev = p.man
				break
			}
			if p.legacy != "" {
				rec.prev = p.synth(0)
				break
			}
		}
		return rec, nil
	}
	if len(notes) == 0 {
		return nil, fmt.Errorf("pghive: durable: no recoverable state in %s", dir)
	}
	return nil, fmt.Errorf("pghive: durable: no generation recovers: %s", strings.Join(notes, "; "))
}

// recoveryHardError wraps a failure that no older generation can fix
// (the WAL directory itself is unreadable); tryCandidate returns it
// to stop the fallback walk.
type recoveryHardError struct{ err error }

func (e *recoveryHardError) Error() string { return e.err.Error() }

// tryCandidate attempts a full recovery from one starting point:
// merge the candidate's image chain, open the WAL above it, replay.
func tryCandidate(dir string, opts Options, dopts DurableOptions, fsys vfs.FS, c candidate) (*recovered, error) {
	var img *core.Image
	var man *runfile.Manifest
	var err error
	switch {
	case c.man != nil:
		man = c.man
		img, err = mergedImage(fsys, dir, opts, man)
	case c.legacy != "":
		img, err = core.LoadImage(fsys, c.legacy)
		if err == nil && img.WALSeq != c.legacyLSN {
			err = fmt.Errorf("pghive: durable: checkpoint %s covers WAL LSN %d, file name says %d", c.legacy, img.WALSeq, c.legacyLSN)
		}
		if err == nil {
			man = c.synth(img.Elements())
		}
	default:
		man = c.synth(0)
	}
	if err != nil {
		return nil, err
	}

	rp, err := newReplayer(opts, img, dopts.MaxIdempotencyKeys)
	if err != nil {
		return nil, err
	}
	covered := man.Covered()
	log, err := wal.Open(filepath.Join(dir, walSubdir), wal.Options{
		SegmentBytes: dopts.SegmentBytes,
		NoSync:       dopts.NoSync,
		MinLSN:       covered + 1,
		FS:           dopts.FS,
	})
	if err != nil {
		return nil, &recoveryHardError{err: err}
	}
	if err := log.Replay(covered, rp.apply); err != nil {
		_ = log.Close()
		return nil, err
	}
	return &recovered{rp: rp, log: log, man: man}, nil
}

// mergedImage materializes the state a generation covers: its base
// image (the options-derived empty state when Base is "") with the
// delta runs folded on in order. Chain contiguity is enforced by
// ImageDelta.Apply; payload integrity by the run frames and the
// manifest's recorded CRCs.
func mergedImage(fsys vfs.FS, dir string, opts Options, man *runfile.Manifest) (*core.Image, error) {
	var img *core.Image
	var err error
	if man.Base == "" {
		img, err = core.EmptyImage(opts)
	} else {
		img, err = core.LoadImage(fsys, filepath.Join(dir, man.Base))
		if err == nil && img.WALSeq != man.BaseLSN {
			err = fmt.Errorf("pghive: durable: base %s covers WAL LSN %d, manifest seq %d says %d", man.Base, img.WALSeq, man.Seq, man.BaseLSN)
		}
	}
	if err != nil {
		return nil, err
	}
	for _, ri := range man.Runs {
		payload, rerr := runfile.ReadRun(fsys, dir, ri)
		if rerr != nil {
			return nil, rerr
		}
		var delta core.ImageDelta
		if err := json.Unmarshal(payload, &delta); err != nil {
			return nil, fmt.Errorf("pghive: durable: run %s: %w", ri.Name, err)
		}
		if delta.FromLSN != ri.From || delta.ToLSN != ri.To {
			return nil, fmt.Errorf("pghive: durable: run %s covers (%d, %d], manifest says (%d, %d]", ri.Name, delta.FromLSN, delta.ToLSN, ri.From, ri.To)
		}
		if err := delta.Apply(img); err != nil {
			return nil, fmt.Errorf("pghive: durable: run %s: %w", ri.Name, err)
		}
	}
	return img, nil
}

// Dir returns the service's data directory.
func (d *DurableService) Dir() string { return d.dir }

// DurabilityError marks a write rejected because it could not be made
// durable (WAL encode/append/sync failure) — a server-side fault the
// caller may retry, as opposed to a malformed input. The service state
// is unchanged when one is returned.
type DurabilityError struct{ Err error }

func (e *DurabilityError) Error() string { return e.Err.Error() }
func (e *DurabilityError) Unwrap() error { return e.Err }

// ReadOnlyError marks a write rejected fast because the service is in
// declared read-only degraded mode (Reason is one of the Degrade*
// constants). The WAL was not touched; reads keep serving. The state
// clears on a successful Rearm — or, for DegradeDiskFull, on the next
// successful compaction.
type ReadOnlyError struct{ Reason string }

func (e *ReadOnlyError) Error() string {
	return "pghive: durable: service is read-only (" + e.Reason + ")"
}

// Degraded reports whether the service is in declared read-only mode,
// and why (one of the Degrade* constants).
func (d *DurableService) Degraded() (reason string, degraded bool) {
	if r := d.degradedReason.Load(); r != nil {
		return *r, true
	}
	return "", false
}

// failFastLocked rejects writes in read-only mode before they touch
// the WAL. Callers must hold mu.
func (d *DurableService) failFastLocked() error {
	if r := d.degradedReason.Load(); r != nil {
		return &ReadOnlyError{Reason: *r}
	}
	return nil
}

// maybeDegradeLocked inspects a failed append and declares read-only
// mode when the failure is one no retry can outrun: a broken log
// (every future append is refused anyway, better to say so cheaply)
// or a full disk (retrying only hammers a volume that needs space
// freed). A transient injected fault or I/O hiccup does NOT degrade —
// the next write simply tries again. Callers must hold mu.
func (d *DurableService) maybeDegradeLocked(err error) {
	switch {
	case d.wal().Broken():
		d.degrade(DegradeWALBroken)
	case errors.Is(err, syscall.ENOSPC):
		d.degrade(DegradeDiskFull)
	}
}

func (d *DurableService) degrade(reason string) {
	r := reason
	d.degradedReason.CompareAndSwap(nil, &r)
}

// clearDegradeIfWritable lifts read-only mode when the log itself
// still accepts appends — the disk-full path, where compaction just
// freed superseded segments. A broken log stays degraded until Rearm.
func (d *DurableService) clearDegradeIfWritable() {
	if d.degradedReason.Load() != nil && !d.wal().Broken() {
		d.degradedReason.Store(nil)
	}
}

// walRecTypeFor selects the WAL record type for a write: keyed
// variants when an idempotency key rides along.
func walRecTypeFor(key string, retract bool) byte {
	switch {
	case key != "" && retract:
		return walRecRetractKeyed
	case key != "":
		return walRecIngestKeyed
	case retract:
		return walRecRetract
	default:
		return walRecIngest
	}
}

// encodeWALRecordPayload serializes g (behind the idempotency key, for
// keyed record types) into one WAL record payload — the inverse of
// decodeWALRecord. Encode failures are wrapped in DurabilityError; a
// malformed key is the caller's fault and returned plain.
func encodeWALRecordPayload(t byte, key string, g *Graph) ([]byte, error) {
	var buf bytes.Buffer
	if t == walRecIngestKeyed || t == walRecRetractKeyed {
		if len(key) == 0 || len(key) > MaxIdempotencyKeyLen {
			return nil, fmt.Errorf("pghive: durable: idempotency key must be 1..%d bytes, got %d", MaxIdempotencyKeyLen, len(key))
		}
		buf.WriteByte(byte(len(key)))
		buf.WriteString(key)
	}
	if err := WriteJSONL(&buf, g); err != nil {
		return nil, &DurabilityError{Err: fmt.Errorf("pghive: durable: encode batch: %w", err)}
	}
	return buf.Bytes(), nil
}

// appendLocked encodes g and logs it as one WAL record, returning the
// record's LSN. Callers must hold the service write lock so the log
// order equals the apply order — replay preserves exactly that order.
// Failures are wrapped in DurabilityError; unrecoverable ones degrade
// the service to read-only.
func (d *DurableService) appendLocked(t byte, key string, g *Graph) (uint64, error) {
	payload, err := encodeWALRecordPayload(t, key, g)
	if err != nil {
		return 0, err
	}
	lsn, err := d.wal().Append(t, payload)
	if err != nil {
		d.maybeDegradeLocked(err)
		return 0, &DurabilityError{Err: err}
	}
	return lsn, nil
}

// noteAppliedLocked records that the mutation logged at lsn is (about
// to be) absorbed into the live state. Callers must hold mu.
func (d *DurableService) noteAppliedLocked(key string, lsn uint64) {
	d.appliedLSN = lsn
	if key != "" {
		d.keys.add(key, lsn)
	}
}

// Ingest write-ahead logs the batch, then runs it through the
// pipeline and publishes a fresh snapshot. On error the log and the
// served state are both unchanged.
func (d *DurableService) Ingest(g *Graph) (BatchTiming, error) {
	return d.IngestContext(context.Background(), g)
}

// IngestContext is Ingest with a deadline on write admission: if ctx
// ends while the call is queued behind other writers, nothing is
// logged or applied and ctx's error is returned.
func (d *DurableService) IngestContext(ctx context.Context, g *Graph) (BatchTiming, error) {
	bt, _, err := d.IngestIdempotent(ctx, "", g)
	return bt, err
}

// IngestIdempotent is IngestContext with an idempotency key (""
// degrades to a plain ingest). If a write with the same key was
// already applied — in this process's lifetime or recovered from the
// WAL/checkpoint after a crash — nothing is applied again and
// replayed is true. The key is WAL-logged inside the batch's record,
// so the at-most-once promise survives crashes, compaction, and
// re-arm; it is bounded only by DurableOptions.MaxIdempotencyKeys.
func (d *DurableService) IngestIdempotent(ctx context.Context, key string, g *Graph) (bt BatchTiming, replayed bool, err error) {
	return d.writeIdempotent(ctx, key, g, false)
}

// Retract write-ahead logs the retraction, then applies it (see
// Service.Retract).
func (d *DurableService) Retract(g *Graph) (BatchTiming, error) {
	return d.RetractContext(context.Background(), g)
}

// RetractContext is Retract with a deadline on write admission.
func (d *DurableService) RetractContext(ctx context.Context, g *Graph) (BatchTiming, error) {
	bt, _, err := d.RetractIdempotent(ctx, "", g)
	return bt, err
}

// RetractIdempotent is RetractContext with an idempotency key (see
// IngestIdempotent for the contract).
func (d *DurableService) RetractIdempotent(ctx context.Context, key string, g *Graph) (bt BatchTiming, replayed bool, err error) {
	return d.writeIdempotent(ctx, key, g, true)
}

// writeIdempotent is the single durable write path: admission (with
// ctx deadline), replay detection, read-only fail-fast, WAL append,
// apply, publish. With GroupCommit enabled the same steps run inside
// the committer goroutine instead, batched with concurrent writers.
func (d *DurableService) writeIdempotent(ctx context.Context, key string, g *Graph, retract bool) (BatchTiming, bool, error) {
	if d.commitCh != nil {
		return d.submitCommit(ctx, key, g, retract)
	}
	if err := d.mu.LockContext(ctx); err != nil {
		return BatchTiming{}, false, err
	}
	defer d.mu.Unlock()
	if key != "" {
		if _, seen := d.keys.seen(key); seen {
			return BatchTiming{}, true, nil
		}
	}
	if err := d.failFastLocked(); err != nil {
		return BatchTiming{}, false, err
	}
	lsn, err := d.appendLocked(walRecTypeFor(key, retract), key, g)
	if err != nil {
		return BatchTiming{}, false, err
	}
	d.noteAppliedLocked(key, lsn)
	if retract {
		return d.retractLocked(g), false, nil
	}
	return d.ingestLocked(g), false, nil
}

// DrainStream feeds every batch of the stream through the pipeline,
// write-ahead logging each materialized batch before applying it, so
// a crash mid-stream loses at most the batch being appended — every
// earlier batch replays on recovery. Like Service.DrainStream the
// write lock is held for the whole drain and CSV streams are adopted
// into the service's edge-ID and resolver state.
func (d *DurableService) DrainStream(r StreamReader, onBatch func(BatchTiming)) error {
	return d.DrainStreamContext(context.Background(), r, onBatch)
}

// DrainStreamContext is DrainStream with a deadline covering write
// admission and the drain itself (checked before each batch). Expiry
// mid-stream is not a rollback: durably logged batches stay applied.
func (d *DurableService) DrainStreamContext(ctx context.Context, r StreamReader, onBatch func(BatchTiming)) error {
	if err := d.mu.LockContext(ctx); err != nil {
		return err
	}
	defer d.mu.Unlock()
	if err := d.failFastLocked(); err != nil {
		return err
	}
	return d.drainLocked(r, onBatch, func(g *Graph) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		lsn, err := d.appendLocked(walRecStream, "", g)
		if err != nil {
			return err
		}
		d.noteAppliedLocked("", lsn)
		return nil
	})
}

// Compact folds every sealed WAL segment into the checkpoint
// generation and prunes the segments below the resulting WAL floor.
// It first seals the active segment, so a compaction captures
// everything appended before the call. The fold runs entirely against
// a private shadow pipeline seeded from the current generation's
// merged image — no service lock is taken, so concurrent writers (and
// readers) proceed at full speed. Safe to call concurrently with
// writes; rounds serialize among themselves.
//
// A steady-state round writes only the DELTA of the folded span as a
// new run file and swaps in a manifest referencing it — IO is
// proportional to what changed. When the chain would exceed
// MaxRuns, or accumulated tombstones cross MaxTombstoneRatio of the
// base, the round writes a fresh base image instead and the chain
// collapses. Either way the new manifest's WAL floor is the PREVIOUS
// generation's covered LSN, so if this round's files turn out torn
// on a lying disk, recovery falls back one generation and replays
// the retained records.
//
// A successful round also re-arms a disk-full degraded service: the
// pruned segments are exactly the space the write path was starving
// for. A broken-WAL degradation is not cleared here — see Rearm.
func (d *DurableService) Compact() error {
	d.compactMu.Lock()
	defer d.compactMu.Unlock()

	lg := d.wal()
	if err := lg.Rotate(); err != nil {
		return err
	}
	sealed := lg.Sealed()
	var target uint64
	for _, seg := range sealed {
		if seg.Last > target {
			target = seg.Last
		}
	}
	covered := d.man.Covered()
	if target <= covered {
		// Nothing new sealed since the last fold; still ship anything
		// the backend is missing, prune any already-covered segments a
		// crash may have left behind (gated by the ship watermark), and
		// retry any sweep removals that failed last time.
		_ = d.shipRoundLocked(context.Background())
		if _, err := lg.Prune(d.pruneFloorLocked(d.man.WALFloor)); err != nil {
			return err
		}
		d.sweepLocked()
		d.clearDegradeIfWritable()
		return nil
	}
	if d.compactTestHook != nil {
		d.compactTestHook()
	}

	// Shadow replay: the current generation's merged image + sealed
	// records up to the target, through the same apply path recovery
	// uses. The bound keeps the fold off the active segment entirely —
	// concurrent appends are never even read.
	preImg, err := mergedImage(d.fs, d.dir, d.opts, d.man)
	if err != nil {
		return err
	}
	rp, err := newReplayer(d.opts, preImg, d.dopts.MaxIdempotencyKeys)
	if err != nil {
		return err
	}
	if err := lg.ReplayRange(covered, target, rp.apply); err != nil {
		return err
	}
	nextImg, err := rp.image(target)
	if err != nil {
		return err
	}
	delta, err := core.DiffImage(preImg, nextImg)
	if err != nil {
		return err
	}

	newMan := &runfile.Manifest{
		Version: runfile.ManifestVersion,
		Seq:     d.manSeq + 1,
		// One generation of WAL retention: floor at the PREVIOUS
		// coverage so recovery can fall back past this round's files.
		WALFloor: covered,
	}
	if d.ship != nil {
		// Persist the upload watermark so a restart keeps gating prunes
		// before its first shipping round completes.
		newMan.ShippedLSN = d.ship.watermark
	}
	baseElems := max(d.man.BaseElements, 1)
	fold := len(d.man.Runs)+1 > d.dopts.MaxRuns ||
		float64(d.man.Tombstones()+delta.Tombstones()) > d.dopts.MaxTombstoneRatio*float64(baseElems)
	if fold {
		// Leveled merge: collapse base + runs + new delta into a fresh
		// base image; the chain restarts empty.
		path := checkpointPath(d.dir, target)
		err := vfs.WriteFileAtomic(d.fs, path, func(w io.Writer) error {
			return core.EncodeImage(w, nextImg)
		})
		if err != nil {
			return err
		}
		newMan.Base = filepath.Base(path)
		newMan.BaseLSN = target
		newMan.BaseElements = nextImg.Elements()
	} else {
		payload, err := json.Marshal(delta)
		if err != nil {
			return fmt.Errorf("pghive: durable: encode run: %w", err)
		}
		info, err := runfile.WriteRun(d.fs, d.dir, covered, target, delta.Tombstones(), payload)
		if err != nil {
			return err
		}
		newMan.Base = d.man.Base
		newMan.BaseLSN = d.man.BaseLSN
		newMan.BaseElements = d.man.BaseElements
		newMan.Runs = append(slices.Clone(d.man.Runs), info)
	}
	if err := runfile.WriteManifest(d.fs, d.dir, newMan); err != nil {
		return err
	}

	// The manifest swap is the commit point: the new generation
	// supersedes files the sweep below removes; failures past this
	// point leave extra files a later round (or OpenDurable) removes,
	// never an unrecoverable state.
	d.prevMan = d.man
	d.man = newMan
	d.manSeq = newMan.Seq
	// Ship the new generation (and any sealed segments) before pruning:
	// a successful round advances the watermark, so the prune below can
	// reclaim what the backend now holds. Ship failures never fail the
	// round — the gated prune simply retains more, loudly (ShipFailures).
	_ = d.shipRoundLocked(context.Background())
	d.sweepLocked()
	if _, err := lg.Prune(d.pruneFloorLocked(newMan.WALFloor)); err != nil {
		return err
	}
	d.clearDegradeIfWritable()
	return nil
}

// sweepLocked garbage-collects every checkpoint-layout file in the
// data directory that neither the current nor the previous generation
// references: superseded base images, folded-away or orphaned runs
// (written but never committed by a manifest), stale manifests —
// including corrupt ones recovery skipped — and temp residue from
// interrupted atomic writes. Removal failures are counted in
// DurableStats (GCFailures / LastGCError) and retried on the next
// sweep; the sweep itself never fails the caller, because leftover
// files cost space, not correctness. Callers must hold compactMu (or
// own d exclusively, as during OpenDurable).
func (d *DurableService) sweepLocked() {
	keep := d.man.Files()
	if d.man.Seq > 0 {
		keep[runfile.ManifestName(d.man.Seq)] = true
	}
	if d.prevMan != nil {
		for f := range d.prevMan.Files() {
			keep[f] = true
		}
		if d.prevMan.Seq > 0 {
			keep[runfile.ManifestName(d.prevMan.Seq)] = true
		}
	}
	patterns := []string{
		ckptPrefix + "*" + ckptSuffix,
		runfile.RunGlobPattern,
		runfile.ManifestGlobPattern,
		ckptTmpPattern,
	}
	for _, pat := range patterns {
		names, err := d.fs.Glob(filepath.Join(d.dir, pat))
		if err != nil {
			d.noteGCFailure(err)
			continue
		}
		for _, p := range names {
			if keep[filepath.Base(p)] {
				continue
			}
			if err := d.fs.Remove(p); err != nil {
				d.noteGCFailure(fmt.Errorf("remove %s: %w", p, err))
			}
		}
	}
}

func (d *DurableService) noteGCFailure(err error) {
	d.gcFailures.Add(1)
	msg := err.Error()
	d.lastGCErr.Store(&msg)
}

// Rearm restores write service after read-only degradation: it closes
// the (possibly broken) log, re-opens it from disk — re-scanning what
// is actually durable and truncating any torn tail — and replays onto
// the live state any record the state never absorbed. That last step
// resolves the broken-WAL ambiguity honestly: if the frame of an
// errored append turned out to be durable after all, it is applied
// now (with its idempotency key, so a client retry of that write
// still lands exactly once); if it did not survive, it is gone and a
// retry applies it fresh. A no-op when the service is healthy. On
// failure the service stays read-only and Rearm can be retried.
func (d *DurableService) Rearm() error {
	d.compactMu.Lock()
	defer d.compactMu.Unlock()
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, degraded := d.Degraded(); !degraded {
		return nil
	}
	// Best effort: a broken log's close may itself fail; the reopen
	// below re-reads the on-disk truth regardless.
	_ = d.wal().Close()
	lg, err := wal.Open(filepath.Join(d.dir, walSubdir), wal.Options{
		SegmentBytes: d.dopts.SegmentBytes,
		NoSync:       d.dopts.NoSync,
		MinLSN:       d.man.Covered() + 1,
		FS:           d.dopts.FS,
	})
	if err != nil {
		return fmt.Errorf("pghive: durable: rearm: %w", err)
	}
	if err := lg.Replay(d.appliedLSN, d.applyRecordLocked); err != nil {
		_ = lg.Close()
		return fmt.Errorf("pghive: durable: rearm: %w", err)
	}
	d.log.Store(lg)
	d.appliedLSN = lg.NextLSN() - 1
	d.degradedReason.Store(nil)
	return nil
}

// applyRecordLocked folds one WAL record into the live service state
// through the same rules recovery uses. Callers must hold mu.
func (d *DurableService) applyRecordLocked(rec wal.Record) error {
	g, key, retract, err := decodeWALRecord(rec)
	if err != nil {
		return err
	}
	if retract {
		d.retractLocked(g)
	} else {
		d.ingestLocked(g)
	}
	d.noteAppliedLocked(key, rec.LSN)
	return nil
}

// CheckpointLSN returns the WAL sequence number the current
// checkpoint generation covers — base image plus delta runs (zero
// before the first compaction).
func (d *DurableService) CheckpointLSN() uint64 {
	d.compactMu.Lock()
	defer d.compactMu.Unlock()
	return d.man.Covered()
}

// DurableStats describes the durability state of the data directory.
type DurableStats struct {
	// Dir is the data directory.
	Dir string `json:"dir"`
	// CheckpointLSN is the WAL LSN the current checkpoint generation
	// covers (base image + delta runs).
	CheckpointLSN uint64 `json:"checkpointLSN"`
	// BaseLSN is the WAL LSN of the generation's base image alone;
	// CheckpointLSN-BaseLSN records live in the run chain.
	BaseLSN uint64 `json:"baseLSN"`
	// ManifestSeq is the current generation number (zero before the
	// first manifest is written).
	ManifestSeq uint64 `json:"manifestSeq"`
	// Runs / RunBytes / RunTombstones describe the delta-run chain on
	// top of the base image; a fold resets all three.
	Runs          int   `json:"runs"`
	RunBytes      int64 `json:"runBytes"`
	RunTombstones int   `json:"runTombstones"`
	// RecoveryFallbacks counts the checkpoint generations recovery had
	// to skip (corrupt manifest, torn base or run) before one
	// validated. Zero in healthy operation.
	RecoveryFallbacks int `json:"recoveryFallbacks,omitempty"`
	// GCFailures counts file removals the garbage-collection sweep
	// could not complete (retried every sweep); LastGCError is the
	// most recent failure.
	GCFailures  int64  `json:"gcFailures,omitempty"`
	LastGCError string `json:"lastGCError,omitempty"`
	// WALNextLSN is the sequence number the next mutation will carry;
	// NextLSN-1-CheckpointLSN records replay on recovery today.
	WALNextLSN uint64 `json:"walNextLSN"`
	// WALSyncs counts the fsyncs the log has issued; with GroupCommit
	// enabled, acknowledged writes divided by WALSyncs is the group-
	// commit amplification win.
	WALSyncs uint64 `json:"walSyncs"`
	// ShippedLSN is the WAL shipping watermark: every record at or
	// below it is durable in the configured backend (zero when
	// shipping is disabled). Local pruning never passes it.
	ShippedLSN uint64 `json:"shippedLSN,omitempty"`
	// ShipFailures counts failed backend uploads/GC deletions (each is
	// retried on a later round); LastShipError is the most recent.
	ShipFailures  int64  `json:"shipFailures,omitempty"`
	LastShipError string `json:"lastShipError,omitempty"`
	// WALSealedSegments / WALSealedBytes count the sealed segments
	// waiting for compaction.
	WALSealedSegments int   `json:"walSealedSegments"`
	WALSealedBytes    int64 `json:"walSealedBytes"`
	// WALBroken reports a WAL that refuses writes because a failed
	// append could not be rolled back; the service still serves reads
	// and the directory still recovers, but the last failed record's
	// durability is indeterminate until then.
	WALBroken bool `json:"walBroken"`
	// ReadOnly / ReadOnlyReason declare degraded read-only mode (see
	// the Degrade* constants and Rearm).
	ReadOnly       bool   `json:"readOnly,omitempty"`
	ReadOnlyReason string `json:"readOnlyReason,omitempty"`
	// IdempotencyKeys counts the retained applied-key set.
	IdempotencyKeys int `json:"idempotencyKeys"`
}

// DurableStats snapshots the durability counters.
func (d *DurableService) DurableStats() DurableStats {
	lg := d.wal()
	st := DurableStats{
		Dir:        d.dir,
		WALNextLSN: lg.NextLSN(), WALBroken: lg.Broken(),
		WALSyncs:        lg.Syncs(),
		IdempotencyKeys: d.keys.len(),
		GCFailures:      d.gcFailures.Load(),
	}
	d.compactMu.Lock()
	st.CheckpointLSN = d.man.Covered()
	st.BaseLSN = d.man.BaseLSN
	st.ManifestSeq = d.man.Seq
	st.Runs = len(d.man.Runs)
	for _, r := range d.man.Runs {
		st.RunBytes += r.Bytes
	}
	st.RunTombstones = d.man.Tombstones()
	st.RecoveryFallbacks = d.fallbacks
	if d.ship != nil {
		st.ShippedLSN = d.ship.watermark
		st.ShipFailures = d.ship.failures
		st.LastShipError = d.ship.lastErr
	}
	d.compactMu.Unlock()
	if msg := d.lastGCErr.Load(); msg != nil {
		st.LastGCError = *msg
	}
	if reason, degraded := d.Degraded(); degraded {
		st.ReadOnly, st.ReadOnlyReason = true, reason
	}
	for _, seg := range lg.Sealed() {
		st.WALSealedSegments++
		st.WALSealedBytes += seg.Bytes
	}
	return st
}

// Close stops the background compactor and closes the WAL. The state
// is already durable — close performs no final fold; reopening the
// directory recovers everything.
func (d *DurableService) Close() error {
	d.closeOnce.Do(func() {
		close(d.stop)
		if d.done != nil {
			<-d.done
		}
		if d.commitDone != nil {
			<-d.commitDone
		}
		d.compactMu.Lock()
		defer d.compactMu.Unlock()
		d.mu.Lock()
		defer d.mu.Unlock()
		d.closeErr = d.wal().Close()
	})
	return d.closeErr
}

// compactLoop runs Compact on the configured cadence until Close.
func (d *DurableService) compactLoop() {
	defer close(d.done)
	t := time.NewTicker(d.dopts.CompactInterval)
	defer t.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-t.C:
			if err := d.Compact(); err != nil && d.dopts.OnCompactError != nil {
				d.dopts.OnCompactError(err)
			}
		}
	}
}

// idemStore is the bounded applied idempotency-key set: key → the LSN
// of the WAL record that applied it, evicted oldest-first past cap.
// Internally locked so stats readers never contend with the write
// path for the service lock.
type idemStore struct {
	mu   sync.Mutex
	cap  int
	m    map[string]uint64
	fifo []core.AppliedKey // insertion (= LSN) order
	head int               // fifo[:head] already evicted
}

func newIdemStore(cap int) *idemStore {
	return &idemStore{cap: cap, m: make(map[string]uint64)}
}

func (st *idemStore) seen(key string) (uint64, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	lsn, ok := st.m[key]
	return lsn, ok
}

func (st *idemStore) add(key string, lsn uint64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.m[key]; ok {
		return // replay of an already-tracked record
	}
	st.m[key] = lsn
	st.fifo = append(st.fifo, core.AppliedKey{Key: key, LSN: lsn})
	for len(st.m) > st.cap {
		delete(st.m, st.fifo[st.head].Key)
		st.head++
	}
	if st.head > len(st.fifo)/2 && st.head > 64 {
		st.fifo = append([]core.AppliedKey(nil), st.fifo[st.head:]...)
		st.head = 0
	}
}

func (st *idemStore) len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.m)
}

// export returns the retained keys in LSN order — the deterministic
// serialization the checkpoint image needs.
func (st *idemStore) export() []core.AppliedKey {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.head == len(st.fifo) {
		return nil
	}
	return append([]core.AppliedKey(nil), st.fifo[st.head:]...)
}

// walReplayer folds WAL records into an incremental pipeline plus the
// serving-layer state that lives beside it (endpoint bookkeeping, the
// edge-ID watermark, and the applied idempotency-key set). Recovery
// and the compactor's shadow fold both run on it, and its apply rules
// are shared with the live write path (trackGraph / ProcessBatch /
// RetractBatch in the same order), which is what makes replay
// bit-identical to the logged run.
type walReplayer struct {
	inc        *Incremental
	resolver   *Graph
	nextEdgeID ID
	keys       *idemStore
}

// newReplayer builds a replayer positioned at a materialized
// checkpoint image (or at the empty state when img is nil).
func newReplayer(opts Options, img *core.Image, keyCap int) (*walReplayer, error) {
	if keyCap <= 0 {
		keyCap = 65536
	}
	rp := &walReplayer{keys: newIdemStore(keyCap)}
	if img == nil {
		rp.inc = NewIncremental(opts)
	} else {
		inc, extras, err := core.RestoreImage(opts, img)
		if err != nil {
			return nil, fmt.Errorf("pghive: durable: restore image: %w", err)
		}
		rp.inc = inc
		rp.resolver = extras.Resolver
		rp.nextEdgeID = extras.NextEdgeID
		for _, k := range extras.AppliedKeys {
			rp.keys.add(k.Key, k.LSN)
		}
	}
	if rp.resolver == nil {
		rp.resolver = pg.NewGraph()
		rp.resolver.AllowDanglingEdges(true)
	}
	return rp, nil
}

// image captures the replayer's state as a checkpoint image covering
// WAL LSNs up to target.
func (rp *walReplayer) image(target uint64) (*core.Image, error) {
	return rp.inc.CaptureImage(&core.CheckpointExtras{
		Resolver:    rp.resolver,
		NextEdgeID:  rp.nextEdgeID,
		WALSeq:      target,
		AppliedKeys: rp.keys.export(),
	})
}

// apply folds one WAL record.
func (rp *walReplayer) apply(rec wal.Record) error {
	g, key, retract, err := decodeWALRecord(rec)
	if err != nil {
		return err
	}
	if retract {
		rp.inc.RetractBatch(&Batch{Graph: g, Resolver: rp.resolver})
		nodes := g.Nodes()
		for i := range nodes {
			rp.resolver.RemoveNode(nodes[i].ID)
		}
	} else {
		trackGraph(rp.resolver, g, &rp.nextEdgeID)
		rp.inc.ProcessBatch(&Batch{Graph: g, Resolver: rp.resolver, Index: rp.inc.Batches() + 1})
	}
	if key != "" {
		rp.keys.add(key, rec.LSN)
	}
	return nil
}

// decodeWALRecord parses one WAL record into its graph, idempotency
// key (keyed record types only), and mutation direction.
func decodeWALRecord(rec wal.Record) (g *Graph, key string, retract bool, err error) {
	payload := rec.Payload
	switch rec.Type {
	case walRecIngestKeyed, walRecRetractKeyed:
		if len(payload) < 1 || len(payload) < 1+int(payload[0]) {
			return nil, "", false, fmt.Errorf("pghive: durable: wal record %d: truncated idempotency key", rec.LSN)
		}
		n := int(payload[0])
		key = string(payload[1 : 1+n])
		payload = payload[1+n:]
	}
	switch rec.Type {
	case walRecIngest, walRecStream, walRecIngestKeyed:
	case walRecRetract, walRecRetractKeyed:
		retract = true
	default:
		return nil, "", false, fmt.Errorf("pghive: durable: wal record %d has unknown type %d", rec.LSN, rec.Type)
	}
	g, err = ReadJSONL(bytes.NewReader(payload), true)
	if err != nil {
		return nil, "", false, fmt.Errorf("pghive: durable: wal record %d: %w", rec.LSN, err)
	}
	return g, key, retract, nil
}

// checkpointPath names the image covering WAL LSNs up to lsn.
func checkpointPath(dir string, lsn uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%020d%s", ckptPrefix, lsn, ckptSuffix))
}

// legacyCheckpoint is one pre-manifest bare image in the data
// directory.
type legacyCheckpoint struct {
	path string
	lsn  uint64
}

// legacyCheckpoints lists the pre-manifest bare images, newest (by
// filename LSN) first. The filename LSN is a claim, not a fact:
// recovery verifies it against the image's own WALSeq and falls back
// to the next candidate when they disagree.
func legacyCheckpoints(fsys vfs.FS, dir string) ([]legacyCheckpoint, error) {
	names, err := fsys.Glob(filepath.Join(dir, ckptPrefix+"*"+ckptSuffix))
	if err != nil {
		return nil, fmt.Errorf("pghive: durable: %w", err)
	}
	sort.Strings(names)
	var out []legacyCheckpoint
	for i := len(names) - 1; i >= 0; i-- {
		base := filepath.Base(names[i])
		num := strings.TrimSuffix(strings.TrimPrefix(base, ckptPrefix), ckptSuffix)
		n, perr := strconv.ParseUint(num, 10, 64)
		if perr != nil {
			continue // not one of ours
		}
		out = append(out, legacyCheckpoint{path: names[i], lsn: n})
	}
	return out, nil
}
