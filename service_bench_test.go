package pghive_test

// BenchmarkServeConcurrentReads measures the serving layer's read
// path while writes are in flight: one background writer churns
// ingest/retract batches through the service the whole time, and the
// benchmark's parallel readers hit the published snapshot. Because
// reads are lock-free pointer loads plus work on a private schema
// copy, read latency should be flat whether or not a writer is
// running — the copy-on-publish design's selling point. BENCH_4.json
// records the trajectory.

import (
	"sync"
	"sync/atomic"
	"testing"

	pghive "github.com/pghive/pghive"
	"github.com/pghive/pghive/internal/datagen"
)

// serveBenchService builds a service with the LDBC base loaded and a
// background writer churning until the returned stop function runs.
func serveBenchService(b *testing.B) (*pghive.Service, func() int) {
	b.Helper()
	d := datagen.Generate(datagen.LDBC(), 0.5, 1)
	svc := pghive.NewService(pghive.Options{Seed: 1})
	svc.Ingest(d.Graph)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var batches atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			g := writerGraph(0, i)
			svc.Ingest(g)
			svc.Retract(g)
			batches.Add(2)
		}
	}()
	return svc, func() int {
		close(stop)
		wg.Wait()
		return int(batches.Load())
	}
}

func BenchmarkServeConcurrentReads(b *testing.B) {
	b.Run("stats", func(b *testing.B) {
		svc, stop := serveBenchService(b)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				st := svc.Stats()
				if st.NodeTypes == 0 {
					b.Error("empty snapshot served")
					return
				}
			}
		})
		b.StopTimer()
		b.ReportMetric(float64(stop())/b.Elapsed().Seconds(), "writes/s")
	})
	b.Run("pgschema", func(b *testing.B) {
		svc, stop := serveBenchService(b)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if svc.PGSchema(pghive.Strict, "G") == "" {
					b.Error("empty render served")
					return
				}
			}
		})
		b.StopTimer()
		b.ReportMetric(float64(stop())/b.Elapsed().Seconds(), "writes/s")
	})
	b.Run("validate", func(b *testing.B) {
		svc, stop := serveBenchService(b)
		// Ingested once so its types exist; the timed loop itself is
		// pure read-side work against the published snapshot.
		probe := writerGraph(7, 0)
		svc.Ingest(probe)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if rep := svc.Validate(probe, pghive.ValidateLoose); !rep.Valid() {
					b.Error("probe graph failed validation")
					return
				}
			}
		})
		b.StopTimer()
		b.ReportMetric(float64(stop())/b.Elapsed().Seconds(), "writes/s")
	})
}
