package pghive_test

// Randomized fault-schedule property test: the durability contract
// under a hostile disk. Each schedule runs a fixed mutation script
// against a DurableService on an in-memory filesystem (vfs.MemFS)
// wrapped in a fault injector (vfs.InjectFS) that fails one or more
// chosen operations — a failed or lying fsync, a short write, a
// rename undone by power loss, a failed directory sync — then crashes
// the machine (optionally tearing the WAL tail) and recovers
// fault-free. The property: the recovered state is bit-identical
// (checkpoint-image equality) to a plain in-memory service that
// applied exactly the acknowledged mutations.
//
// The one tolerated ambiguity is inherent to write-ahead logging: an
// append whose fsync fails was reported as an error, but if the
// rollback of that append could not be made durable either, the
// record's frame may survive the crash — the disk persisted bytes
// while reporting failure. The WAL is honest about exactly this case:
// it marks itself broken (DurableStats.WALBroken) and refuses all
// later appends, so no acknowledged record can follow the
// indeterminate one. The oracle is therefore strict — recovery must
// equal image(acked) — unless the WAL reported broken, in which case
// image(acked + one trailing errored record) is also accepted. Every
// silent divergence — a lost acknowledged batch, a half-applied
// batch, a resurrected rolled-back record the log did not warn about
// — fails the test.
//
// Degradation rides on the same property. Schedules include ENOSPC
// faults, and every write may fail with either a DurabilityError (the
// WAL was touched and reported failure) or a ReadOnlyError (the
// service declared read-only mode and failed fast — the WAL was NOT
// touched, so the record can never resurrect and is never a tolerated
// tail variant). At the end of every schedule the service must be
// either fully healthy or in *declared* read-only mode: a broken WAL
// must be declared, a degraded service must still serve reads and
// fail probe writes fast, and recovery must always come back healthy.

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"
	"syscall"
	"testing"

	pghive "github.com/pghive/pghive"
	"github.com/pghive/pghive/internal/vfs"
)

const faultDataDir = "data"

// faultOp is one step of the mutation script.
type faultOp struct {
	id      string
	kind    int
	g       *pghive.Graph   // fIngest / fRetract
	data    []byte          // fStream: JSONL bytes
	bs      int             // fStream: batch size
	batches []*pghive.Graph // fStream: the batches the stream yields, in order
}

const (
	fIngest = iota
	fRetract
	fStream
	fCompact
)

// refRec is one WAL-record-sized reference step: an ingest (or
// drained stream batch, which replays identically) or a retraction.
type refRec struct {
	id      string
	retract bool
	g       *pghive.Graph
}

// buildFaultScript builds the script with fresh graphs (each shard
// gets its own copies so parallel shards never share a Graph).
func buildFaultScript(t testing.TB) []faultOp {
	g := func(base int) *pghive.Graph { return stressGraph(t, pghive.ID(base), 5) }
	g0, g1, g2, g3, g4 := g(0), g(1000), g(2000), g(3000), g(4000)
	var buf bytes.Buffer
	if err := pghive.WriteJSONL(&buf, g(5000)); err != nil {
		t.Fatal(err)
	}
	if err := pghive.WriteJSONL(&buf, g(6000)); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	const bs = 7
	var batches []*pghive.Graph
	st := pghive.NewJSONLStream(bytes.NewReader(data), bs)
	for {
		b, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		batches = append(batches, b.Graph)
	}
	return []faultOp{
		{id: "ing0", kind: fIngest, g: g0},
		{id: "ing1", kind: fIngest, g: g1},
		{id: "cmp0", kind: fCompact},
		{id: "ret0", kind: fRetract, g: g0},
		{id: "str0", kind: fStream, data: data, bs: bs, batches: batches},
		{id: "ing2", kind: fIngest, g: g2},
		{id: "cmp1", kind: fCompact},
		{id: "ret1", kind: fRetract, g: g1},
		{id: "ing3", kind: fIngest, g: g3},
		{id: "cmp2", kind: fCompact},
		{id: "ing4", kind: fIngest, g: g4},
	}
}

// faultSchedule is one randomized trial: the faults to inject and the
// crash circumstances.
type faultSchedule struct {
	seed     int64
	faults   []vfs.Fault
	cont     bool // keep running the script after an error
	closeLog bool // call Close before the crash
	torn     bool // append garbage to the WAL tail after the crash
}

func modeName(m vfs.Mode) string {
	switch m {
	case vfs.FailEarly:
		return "early"
	case vfs.FailLate:
		return "late"
	case vfs.ShortWrite:
		return "short"
	}
	return "?"
}

func (sc faultSchedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "schedule(seed=%d cont=%v close=%v torn=%v", sc.seed, sc.cont, sc.closeLog, sc.torn)
	for _, f := range sc.faults {
		fmt.Fprintf(&b, " %v#%d/%s", f.Op, f.N, modeName(f.Mode))
		if f.Err == syscall.ENOSPC {
			b.WriteString("/enospc")
		}
	}
	b.WriteString(")")
	return b.String()
}

// genSchedule derives a schedule from a seed. probe holds per-kind
// operation counts of a fault-free run, so fault positions land on
// operations that actually happen (plus a margin of 2 to target ops
// that only exist in perturbed runs, like rollback syncs).
func genSchedule(seed int64, probe [8]int) faultSchedule {
	rng := rand.New(rand.NewSource(seed))
	sc := faultSchedule{
		seed:     seed,
		cont:     rng.Intn(2) == 0,
		closeLog: rng.Intn(2) == 0,
		torn:     rng.Intn(4) == 0,
	}
	kinds := []vfs.Op{vfs.OpOpen, vfs.OpWrite, vfs.OpSync, vfs.OpSyncDir, vfs.OpRename, vfs.OpRemove, vfs.AnyOp}
	pick := func() vfs.Fault {
		k := kinds[rng.Intn(len(kinds))]
		n := 1 + rng.Intn(probe[k]+2)
		var mode vfs.Mode
		if k == vfs.OpWrite || k == vfs.AnyOp {
			mode = []vfs.Mode{vfs.FailEarly, vfs.FailLate, vfs.ShortWrite}[rng.Intn(3)]
		} else {
			mode = []vfs.Mode{vfs.FailEarly, vfs.FailLate}[rng.Intn(2)]
		}
		f := vfs.Fault{Op: k, N: n, Mode: mode}
		// A third of the faults report a full disk, which the service
		// must answer with declared read-only mode, not a crash.
		if mode != vfs.ShortWrite && rng.Intn(3) == 0 {
			f.Err = syscall.ENOSPC
		}
		return f
	}
	if rng.Intn(8) == 0 {
		// The broken-log path: an append's sync fails (having possibly
		// persisted the frame) and the rollback's own sync fails too.
		n := 1 + rng.Intn(probe[vfs.OpSync]+1)
		sc.faults = []vfs.Fault{
			{Op: vfs.OpSync, N: n, Mode: vfs.FailLate},
			{Op: vfs.OpSync, N: n + 1, Mode: vfs.FailEarly},
		}
		return sc
	}
	sc.faults = append(sc.faults, pick())
	for rng.Intn(3) == 0 {
		sc.faults = append(sc.faults, pick())
	}
	return sc
}

// refImageFor replays the reference records on a plain in-memory
// Service and returns its state image, memoized by history signature.
func refImageFor(t *testing.T, opts pghive.Options, recs []refRec, cache map[string][]byte) []byte {
	t.Helper()
	var key strings.Builder
	for _, r := range recs {
		key.WriteString(r.id)
		key.WriteByte(';')
	}
	if img, ok := cache[key.String()]; ok {
		return img
	}
	svc := pghive.NewService(opts)
	for _, r := range recs {
		if r.retract {
			svc.Retract(r.g)
		} else {
			svc.Ingest(r.g)
		}
	}
	img := serviceImage(t, svc)
	cache[key.String()] = img
	return img
}

// requireDeclaredWriteError asserts a failed write used one of the two
// declared failure channels. It reports whether the failure was a
// read-only rejection — which by contract never touched the WAL, so
// the record can never resurrect after a crash.
func requireDeclaredWriteError(t *testing.T, sc faultSchedule, err error) (readOnly bool) {
	t.Helper()
	var de *pghive.DurabilityError
	if errors.As(err, &de) {
		return false
	}
	var re *pghive.ReadOnlyError
	if errors.As(err, &re) {
		return true
	}
	t.Fatalf("%v: mutation failed with undeclared error %T: %v", sc, err, err)
	return false
}

// appendTornTail writes garbage to the end of the last durable WAL
// segment — the torn frame a mid-write power loss leaves. 0xFF bytes
// decode as an implausible frame length, so recovery must stop the
// scan there and truncate.
func appendTornTail(t *testing.T, mem *vfs.MemFS, seed int64) {
	t.Helper()
	segs, err := mem.Glob(faultDataDir + "/wal/*.wal")
	if err != nil || len(segs) == 0 {
		return
	}
	f, err := mem.OpenFile(segs[len(segs)-1], os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(bytes.Repeat([]byte{0xFF}, 1+int(seed%43))); err != nil {
		t.Fatal(err)
	}
}

// runFaultSchedule executes one trial and checks the recovery oracle.
func runFaultSchedule(t *testing.T, opts pghive.Options, script []faultOp, sc faultSchedule, plan *vfs.Plan, cache map[string][]byte) {
	t.Helper()
	mem := vfs.NewMemFS()
	dopts := pghive.DurableOptions{
		FS:                 vfs.NewInjectFS(mem, plan),
		DisableAutoCompact: true,
		SegmentBytes:       2048, // rotate every few records so pruning happens
		// A tight chain bound so the three compaction ops of the script
		// exercise run writes AND leveled folds: cmp0 writes a run on
		// the empty base, cmp1 folds (the retraction's tombstones cross
		// the ratio), cmp2 writes a run on the folded base. Faults land
		// between run write, manifest swap, and WAL prune.
		MaxRuns: 2,
	}
	d, err := pghive.OpenDurable(faultDataDir, opts, dopts)
	if err != nil {
		t.Fatalf("%v: initial open: %v", sc, err)
	}

	var applied []refRec
	var tail []refRec // errored records with no acknowledged record after them
	ack := func(r refRec) { applied = append(applied, r); tail = nil }

	for _, op := range script {
		var opErr error
		switch op.kind {
		case fCompact:
			// A failed compaction changes no logical state; recovery
			// must work from whatever files it left behind.
			opErr = d.Compact()
		case fIngest:
			if _, err := d.Ingest(op.g); err != nil {
				if !requireDeclaredWriteError(t, sc, err) {
					tail = append(tail, refRec{id: op.id, g: op.g})
				}
				opErr = err
			} else {
				ack(refRec{id: op.id, g: op.g})
			}
		case fRetract:
			if _, err := d.Retract(op.g); err != nil {
				if !requireDeclaredWriteError(t, sc, err) {
					tail = append(tail, refRec{id: op.id, retract: true, g: op.g})
				}
				opErr = err
			} else {
				ack(refRec{id: op.id, retract: true, g: op.g})
			}
		case fStream:
			n := 0
			err := d.DrainStream(pghive.NewJSONLStream(bytes.NewReader(op.data), op.bs), func(pghive.BatchTiming) { n++ })
			for j := 0; j < n; j++ {
				ack(refRec{id: fmt.Sprintf("%s.%d", op.id, j), g: op.batches[j]})
			}
			if err != nil {
				if !requireDeclaredWriteError(t, sc, err) && n < len(op.batches) {
					tail = append(tail, refRec{id: fmt.Sprintf("%s.%d", op.id, n), g: op.batches[n]})
				}
				opErr = err
			}
		}
		if opErr != nil && !sc.cont {
			break
		}
	}

	// End-state property: the service is either fully healthy or in
	// DECLARED read-only mode. An undeclared broken WAL, a degraded
	// service that stops serving reads, or a degraded service that
	// admits a probe write all violate the robustness contract.
	stats := d.DurableStats()
	if stats.WALBroken && !stats.ReadOnly {
		t.Errorf("%v: WAL broken but service not declared read-only", sc)
	}
	if stats.ReadOnly {
		if stats.ReadOnlyReason == "" {
			t.Errorf("%v: read-only declared without a machine-readable reason", sc)
		}
		var re *pghive.ReadOnlyError
		if _, err := d.Ingest(script[0].g); !errors.As(err, &re) {
			t.Errorf("%v: probe write in read-only mode returned %T (%v), want ReadOnlyError", sc, err, err)
		}
		if d.Snapshot() == nil {
			t.Errorf("%v: read-only service stopped serving reads", sc)
		}
	}

	// Unless the WAL declared itself broken — the one case where a
	// failed record's durability is indeterminate — every errored
	// record was rolled back durably and MUST NOT survive the crash.
	if !stats.WALBroken {
		tail = nil
	}

	if sc.closeLog {
		d.Close() // an injected sync fault may fail the close; crash anyway
	}
	mem.Crash()
	if sc.torn {
		appendTornTail(t, mem, sc.seed)
	}

	d2, err := pghive.OpenDurable(faultDataDir, opts, pghive.DurableOptions{FS: mem, DisableAutoCompact: true, SegmentBytes: 2048, MaxRuns: 2})
	if err != nil {
		t.Fatalf("%v: recovery after crash failed: %v", sc, err)
	}
	if st2 := d2.DurableStats(); st2.WALBroken || st2.ReadOnly {
		t.Errorf("%v: recovery on a healthy disk must come back writable, got %+v", sc, st2)
	}
	got := serviceImage(t, d2)
	d2.Close()

	if bytes.Equal(got, refImageFor(t, opts, applied, cache)) {
		return
	}
	for _, e := range tail {
		variant := append(append([]refRec{}, applied...), e)
		if bytes.Equal(got, refImageFor(t, opts, variant, cache)) {
			return
		}
	}
	ids := make([]string, len(applied))
	for i, r := range applied {
		ids[i] = r.id
	}
	t.Errorf("%v: silent divergence: recovered state does not match the acked history [%s] (tolerated trailing variants: %d; fired: %v)",
		sc, strings.Join(ids, " "), len(tail), plan.Fired())
}

// TestFaultScheduleProperty runs the script across many randomized
// fault schedules. Sharded across parallel subtests; each shard owns
// its graphs and reference cache, so the test is -race clean.
func TestFaultScheduleProperty(t *testing.T) {
	opts := pghive.Options{Seed: 7, Parallelism: 1}
	total := 1200
	if testing.Short() {
		total = 160
	}

	// Probe: a fault-free run both counts operations per kind (so
	// schedules target real positions) and proves the oracle itself —
	// recovery with no faults must match the fully-acked reference.
	script := buildFaultScript(t)
	probePlan := vfs.NewPlan()
	runFaultSchedule(t, opts, script, faultSchedule{closeLog: true}, probePlan, map[string][]byte{})
	if t.Failed() {
		t.Fatal("fault-free probe run diverged; aborting schedules")
	}
	probe := probePlan.Ops()
	if probe[vfs.OpSync] == 0 || probe[vfs.OpWrite] == 0 || probe[vfs.OpRename] == 0 {
		t.Fatalf("probe saw no sync/write/rename operations: %v — injector not wired through the stack", probe)
	}

	const shards = 8
	for s := 0; s < shards; s++ {
		s := s
		t.Run(fmt.Sprintf("shard%02d", s), func(t *testing.T) {
			t.Parallel()
			script := buildFaultScript(t)
			cache := map[string][]byte{}
			for i := s; i < total; i += shards {
				sc := genSchedule(0x5EED0+int64(i), probe)
				runFaultSchedule(t, opts, script, sc, vfs.NewPlan(sc.faults...), cache)
			}
		})
	}
}
