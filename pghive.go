// Package pghive is the public API of PG-HIVE, a hybrid incremental
// schema-discovery framework for property graphs (Sideri et al.,
// EDBT 2026).
//
// PG-HIVE infers a full schema graph — node types, edge types,
// property data types, mandatory/optional constraints, and edge
// cardinalities — from a property graph with no prior schema
// information, tolerating noisy properties and missing labels, and
// optionally processing the graph incrementally in batches.
//
// # Quick start
//
//	g := pghive.NewGraph()
//	alice := g.AddNode([]string{"Person"}, map[string]pghive.Value{
//		"name": pghive.Str("Alice"),
//	})
//	post := g.AddNode([]string{"Post"}, map[string]pghive.Value{
//		"content": pghive.Str("hello"),
//	})
//	g.AddEdge([]string{"LIKES"}, alice, post, nil)
//
//	res := pghive.Discover(g, pghive.Options{})
//	fmt.Print(pghive.PGSchema(res.Schema, pghive.Strict, "MyGraph"))
//
// # Incremental discovery
//
//	inc := pghive.NewIncremental(pghive.Options{})
//	for batch := range stream {
//		inc.ProcessBatch(batch)
//	}
//	res := inc.Finalize()
//
// # Parallelism
//
// The pipeline parallelizes vectorization, LSH signature hashing,
// bucket sharding, and edge-endpoint preprocessing across
// Options.Parallelism worker goroutines (default: all CPU cores).
// Parallel execution is deterministic: for a fixed Options.Seed the
// discovered schema is bit-identical for every Parallelism value,
// because work is sharded into disjoint index ranges, shard results
// merge in a fixed order, and the stochastic stages (Word2Vec
// training, adaptive LSH parameter choice) always run sequentially.
// Set Parallelism to 1 to force fully sequential execution.
//
// See the examples/ directory for runnable end-to-end programs.
package pghive

import (
	"io"

	"github.com/pghive/pghive/internal/align"
	"github.com/pghive/pghive/internal/core"
	"github.com/pghive/pghive/internal/infer"
	"github.com/pghive/pghive/internal/lsh"
	"github.com/pghive/pghive/internal/pg"
	"github.com/pghive/pghive/internal/schema"
	"github.com/pghive/pghive/internal/serialize"
	"github.com/pghive/pghive/internal/validate"
	"github.com/pghive/pghive/internal/word2vec"
)

// Core property-graph model (see internal/pg).
type (
	// Graph is an in-memory property graph.
	Graph = pg.Graph
	// Node is a property-graph node.
	Node = pg.Node
	// Edge is a directed property-graph edge.
	Edge = pg.Edge
	// ID identifies a node or edge.
	ID = pg.ID
	// Value is a typed property value.
	Value = pg.Value
	// Kind enumerates property value kinds.
	Kind = pg.Kind
	// Batch is one increment of a graph stream.
	Batch = pg.Batch
	// GraphStats summarizes a graph's structure.
	GraphStats = pg.Stats
)

// Value constructors and kinds.
var (
	// Int builds an integer value.
	Int = pg.Int
	// Float builds a floating-point value.
	Float = pg.Float
	// Bool builds a boolean value.
	Bool = pg.Bool
	// Str builds a string value.
	Str = pg.Str
	// Date builds a date value.
	Date = pg.Date
	// DateTime builds a timestamp value.
	DateTime = pg.DateTime
	// ParseLexical infers the most specific value from text (§4.4
	// priority order).
	ParseLexical = pg.ParseLexical
)

// Property value kinds.
const (
	KindInt      = pg.KindInt
	KindFloat    = pg.KindFloat
	KindBool     = pg.KindBool
	KindDate     = pg.KindDate
	KindDateTime = pg.KindDateTime
	KindString   = pg.KindString
)

// NewGraph returns an empty property graph.
func NewGraph() *Graph { return pg.NewGraph() }

// ReadJSONL loads a graph from the library's JSONL interchange format.
func ReadJSONL(r io.Reader, allowDangling bool) (*Graph, error) {
	return pg.ReadJSONL(r, allowDangling)
}

// WriteJSONL writes a graph in the JSONL interchange format.
func WriteJSONL(w io.Writer, g *Graph) error { return pg.WriteJSONL(w, g) }

// ReadNodesCSV imports a neo4j-admin style node CSV (":ID", ":LABEL",
// typed property columns) into the graph, returning the row count.
func ReadNodesCSV(r io.Reader, g *Graph) (int, error) { return pg.ReadNodesCSV(r, g) }

// ReadEdgesCSV imports a neo4j-admin style relationship CSV
// (":START_ID", ":END_ID", ":TYPE") into the graph.
func ReadEdgesCSV(r io.Reader, g *Graph) (int, error) { return pg.ReadEdgesCSV(r, g) }

// Streaming ingestion (see internal/pg/stream.go): readers that yield
// a graph in bounded batches instead of materializing it whole.
type (
	// StreamReader yields a property graph in bounded batches.
	StreamReader = pg.StreamReader
	// JSONLStream streams the JSONL interchange format.
	JSONLStream = pg.JSONLStream
	// CSVStream streams neo4j-admin style bulk CSV files.
	CSVStream = pg.CSVStream
)

// DefaultStreamBatchSize is the batch size used when a stream is
// created with batchSize <= 0.
const DefaultStreamBatchSize = pg.DefaultStreamBatchSize

// NewJSONLStream returns a bounded-batch reader over a JSONL graph
// stream (the format WriteJSONL emits). batchSize <= 0 selects
// DefaultStreamBatchSize.
func NewJSONLStream(r io.Reader, batchSize int) *JSONLStream {
	return pg.NewJSONLStream(r, batchSize)
}

// NewCSVStream returns a bounded-batch reader over neo4j-admin style
// CSV sources: node files first, then relationship files.
func NewCSVStream(nodes, edges []io.Reader, batchSize int) *CSVStream {
	return pg.NewCSVStream(nodes, edges, batchSize)
}

// ComputeStats returns Table 2-style statistics of a graph.
func ComputeStats(g *Graph) GraphStats { return pg.ComputeStats(g) }

// SplitBatches partitions a graph into n random batches for streaming.
var SplitBatches = pg.SplitBatches

// Discovery pipeline (see internal/hive).
type (
	// Options configures a discovery run.
	Options = core.Options
	// Result is a discovery outcome: schema plus per-element type
	// assignments, cluster statistics and timings.
	Result = core.Result
	// Incremental is the streaming pipeline of §4.6.
	Incremental = core.Incremental
	// Method selects the LSH clustering scheme.
	Method = core.Method
	// BatchTiming is the per-batch cost record of a streaming run.
	BatchTiming = core.BatchTiming
	// EmbeddingMode selects how label tokens are embedded for ELSH.
	EmbeddingMode = core.EmbeddingMode
	// Timing breaks a run into pipeline phases.
	Timing = core.Timing
	// LSHParams pins explicit LSH parameters (overriding §4.2's
	// adaptive strategy).
	LSHParams = lsh.Params
	// InferOptions configures §4.4 post-processing.
	InferOptions = infer.Options
	// Word2VecConfig tunes the label-embedding training.
	Word2VecConfig = word2vec.Config
)

// Clustering methods.
const (
	// ELSH selects Euclidean LSH over hybrid representation vectors.
	ELSH = core.ELSH
	// MinHash selects MinHash LSH over label/property token sets.
	MinHash = core.MinHash
)

// Embedding modes.
const (
	// EmbedWord2Vec trains a skip-gram model per batch (the default).
	EmbedWord2Vec = core.EmbedWord2Vec
	// EmbedHashed derives deterministic hash-based vectors per token.
	EmbedHashed = core.EmbedHashed
)

// Discover runs the full PG-HIVE pipeline (Algorithm 1) over a graph.
func Discover(g *Graph, opts Options) *Result { return core.Discover(g, opts) }

// DiscoverStream runs the full pipeline over a batched stream without
// ever materializing the whole graph: each batch the reader yields is
// processed incrementally (§4.6) and released. Peak memory is one
// batch of decoded elements plus the evolving schema plus two
// per-element indexes that are small but grow with the stream — the
// reader's endpoint bookkeeping (node ID → labels) and the result's
// type assignments (element ID → type pointer, which unlabeled
// endpoint resolution, retraction and validation need); property
// values and representation vectors are never retained across
// batches. For streams whose edges never precede their endpoints (the
// order WriteJSONL and the CSV conventions guarantee), the discovered
// schema is bit-identical to a one-shot Discover over the same data
// for every batch size and Parallelism value. onBatch, when non-nil,
// observes each batch's timing and memory counters as it completes.
func DiscoverStream(r StreamReader, opts Options, onBatch func(BatchTiming)) (*Result, error) {
	return core.DiscoverStream(r, opts, onBatch)
}

// NewIncremental starts a streaming discovery with an empty schema.
func NewIncremental(opts Options) *Incremental { return core.NewIncremental(opts) }

// ResumeIncremental continues a streaming discovery from a previously
// discovered (typically persisted and reloaded) schema.
func ResumeIncremental(opts Options, s *Schema) *Incremental {
	return core.ResumeIncremental(opts, s)
}

// Checkpointing (see internal/core/checkpoint.go): persist the FULL
// cross-batch state of an incremental discovery — schema, per-element
// type assignments, interned shape caches, stream endpoint
// bookkeeping — so a run interrupted mid-stream resumes bit-identical
// to one that never stopped. Write with Incremental.WriteCheckpoint
// (or Service.WriteCheckpoint), restore with ResumeFromCheckpoint (or
// RestoreService).
type (
	// CheckpointExtras carries the stream-reader state persisted
	// alongside the Incremental: the resolver bookkeeping and, for CSV
	// streams, the sequential edge-ID counter.
	CheckpointExtras = core.CheckpointExtras
	// IncrementalStats summarizes the live state of an Incremental.
	IncrementalStats = core.IncrementalStats
)

// ResumeFromCheckpoint restores an incremental discovery from a
// checkpoint written by Incremental.WriteCheckpoint: the returned
// pipeline continues exactly where the interrupted run stood. Seed a
// new StreamReader over the remaining input with the returned extras
// (SeedResolver; SetNextEdgeID for CSV) to finish the stream
// bit-identically. opts must match the interrupted run's options.
func ResumeFromCheckpoint(opts Options, r io.Reader) (*Incremental, *CheckpointExtras, error) {
	return core.ResumeFromCheckpoint(opts, r)
}

// Schema model (see internal/schema).
type (
	// Schema is a discovered schema graph (Def. 3.4).
	Schema = schema.Schema
	// NodeType is a discovered node type (Def. 3.2).
	NodeType = schema.NodeType
	// EdgeType is a discovered edge type (Def. 3.3).
	EdgeType = schema.EdgeType
	// PropStat carries a property's constraints and statistics.
	PropStat = schema.PropStat
	// Cardinality classifies edge multiplicities (1:1, N:1, 1:N, M:N).
	Cardinality = schema.Cardinality
)

// Serialization (see internal/serialize).
type (
	// SerializationMode selects LOOSE or STRICT PG-Schema output.
	SerializationMode = serialize.Mode
)

// Serialization modes.
const (
	// Loose emits a LOOSE PG-Schema graph type.
	Loose = serialize.Loose
	// Strict emits a STRICT PG-Schema graph type.
	Strict = serialize.Strict
)

// PGSchema renders a schema as a PG-Schema CREATE GRAPH TYPE
// declaration (§4.5).
func PGSchema(s *Schema, mode SerializationMode, graphName string) string {
	return serialize.PGSchema(s, mode, graphName)
}

// XSD renders a schema as an XML Schema document (§4.5).
func XSD(s *Schema) string { return serialize.XSD(s) }

// DOT renders the schema graph as Graphviz DOT for visualization.
func DOT(s *Schema, graphName string) string { return serialize.DOT(s, graphName) }

// WriteSchemaJSON persists a schema, including the occurrence
// statistics that let a later session resume incremental discovery.
func WriteSchemaJSON(w io.Writer, s *Schema) error { return schema.WriteJSON(w, s) }

// ReadSchemaJSON restores a schema persisted with WriteSchemaJSON.
func ReadSchemaJSON(r io.Reader) (*Schema, error) { return schema.ReadJSON(r) }

// Validation (see internal/validate).
type (
	// ValidationReport lists the conformance violations of a graph
	// against a schema.
	ValidationReport = validate.Report
	// ValidationViolation is one conformance failure.
	ValidationViolation = validate.Violation
	// ValidationMode selects loose or strict validation.
	ValidationMode = validate.Mode
)

// Validation modes.
const (
	// ValidateLoose checks that every element is typeable.
	ValidateLoose = validate.Loose
	// ValidateStrict additionally checks properties, data types,
	// constraints, endpoints and cardinalities.
	ValidateStrict = validate.Strict
)

// Validate checks a graph against a discovered schema (§4.4's
// validation use case).
func Validate(g *Graph, s *Schema, mode ValidationMode) *ValidationReport {
	return validate.Graph(g, s, mode)
}

// Label alignment (see internal/align).
type (
	// AlignOptions tunes semantic label alignment.
	AlignOptions = align.Options
	// AlignMerge records one alignment decision.
	AlignMerge = align.Merge
)

// AlignNodeTypes merges node types whose labels are semantically
// equivalent (Organization vs Company) based on the label usage
// observable in g — the integration scenario of §6's future work.
func AlignNodeTypes(s *Schema, g *Graph, opts AlignOptions) []AlignMerge {
	return align.NodeTypes(s, g, opts)
}
