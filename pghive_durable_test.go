package pghive_test

// Durable-service crash-recovery property tests. The contract: for a
// service whose every mutation is write-ahead logged, kill -9 at ANY
// record boundary must recover — newest checkpoint + WAL tail replay
// — to a state bit-identical (checkpoint-image bytes, which cover
// schema, per-element assignments, counters, shape caches, endpoint
// bookkeeping, and the edge-ID watermark) to a plain in-memory
// service that applied exactly the records the log retained. Crash
// simulation is file-level: the data directory is copied or the WAL
// truncated at record boundaries (with optional torn garbage
// appended), and a fresh OpenDurable recovers from the files alone.

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	pghive "github.com/pghive/pghive"
	"github.com/pghive/pghive/internal/datagen"
	"github.com/pghive/pghive/internal/vfs"
	"github.com/pghive/pghive/internal/wal"
)

// durableFixture is one deterministic mutation script: four ingest
// batches, a retraction of the second, and a streamed drain — every
// write-path kind the WAL records.
type durableFixture struct {
	opts       pghive.Options
	ingests    []*pghive.Graph
	retract    *pghive.Graph
	streamData []byte
	streamBS   int
}

func newDurableFixture(t *testing.T, opts pghive.Options) *durableFixture {
	t.Helper()
	d := datagen.Generate(datagen.LDBC(), 0.15, 42)
	batches := pghive.SplitBatches(d.Graph, 8, rand.New(rand.NewSource(9)))
	if len(batches) != 8 {
		t.Fatalf("split into %d batches, want 8", len(batches))
	}
	fx := &durableFixture{opts: opts, streamBS: 300}
	for _, b := range batches[:4] {
		fx.ingests = append(fx.ingests, b.Graph)
	}
	fx.retract = batches[1].Graph
	var buf bytes.Buffer
	for _, b := range batches[4:] {
		if err := pghive.WriteJSONL(&buf, b.Graph); err != nil {
			t.Fatal(err)
		}
	}
	fx.streamData = buf.Bytes()
	return fx
}

// serviceImage serializes a service's full state; two services whose
// images are byte-equal are indistinguishable to every read and every
// future write.
func serviceImage(t *testing.T, s interface{ WriteCheckpoint(io.Writer) error }) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// referenceImages applies the script on a plain in-memory Service,
// capturing the state image after every record-sized step: ref[0] is
// the empty service, ref[i] the state after the first i WAL records.
func (fx *durableFixture) referenceImages(t *testing.T) [][]byte {
	t.Helper()
	svc := pghive.NewService(fx.opts)
	imgs := [][]byte{serviceImage(t, svc)}
	for _, g := range fx.ingests {
		svc.Ingest(g)
		imgs = append(imgs, serviceImage(t, svc))
	}
	svc.Retract(fx.retract)
	imgs = append(imgs, serviceImage(t, svc))
	st := pghive.NewJSONLStream(bytes.NewReader(fx.streamData), fx.streamBS)
	for {
		b, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		svc.Ingest(b.Graph)
		imgs = append(imgs, serviceImage(t, svc))
	}
	return imgs
}

// runDurable applies the script through the durable API. compactAt,
// when >= 0, triggers a manual compaction after that mutation index
// (0-based over the 6 mutations).
func (fx *durableFixture) runDurable(t *testing.T, dir string, dopts pghive.DurableOptions, compactAt int) {
	t.Helper()
	d, err := pghive.OpenDurable(dir, fx.opts, dopts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	step := 0
	maybeCompact := func() {
		if step == compactAt {
			if err := d.Compact(); err != nil {
				t.Fatal(err)
			}
		}
		step++
	}
	for _, g := range fx.ingests {
		if _, err := d.Ingest(g); err != nil {
			t.Fatal(err)
		}
		maybeCompact()
	}
	if _, err := d.Retract(fx.retract); err != nil {
		t.Fatal(err)
	}
	maybeCompact()
	if err := d.DrainStream(pghive.NewJSONLStream(bytes.NewReader(fx.streamData), fx.streamBS), nil); err != nil {
		t.Fatal(err)
	}
	maybeCompact()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

// copyTree copies a directory recursively (the point-in-time file
// state a crash freezes).
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// walSegments lists a data directory's WAL segment files in LSN order.
func walSegments(t *testing.T, dir string) []string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal", "*.wal"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(segs)
	return segs
}

// crashPoint is one record boundary across the whole log: records is
// the number of complete records at (and before) it.
type crashPoint struct {
	segIdx  int
	end     int64
	records int
}

// crashPoints enumerates every record boundary, including the empty
// log (0 records).
func crashPoints(t *testing.T, segs []string) []crashPoint {
	t.Helper()
	points := []crashPoint{{segIdx: -1}}
	records := 0
	for si, seg := range segs {
		ends, err := wal.RecordEnds(nil, seg)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ends {
			records++
			points = append(points, crashPoint{segIdx: si, end: e, records: records})
		}
	}
	return points
}

// buildCrashDir materializes the file state of a crash at p: segments
// before p's are intact, p's segment is truncated at the boundary,
// later segments never existed. torn, when non-nil, is appended after
// the boundary — the half-written record the crash interrupted.
func buildCrashDir(t *testing.T, srcDir string, segs []string, p crashPoint, torn []byte) string {
	t.Helper()
	dst := t.TempDir()
	// Checkpoint layouts predate every crash point in these tests
	// (compaction variants use buildRunLayoutCrashDir instead).
	cks, err := filepath.Glob(filepath.Join(srcDir, "checkpoint-*.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(cks) != 0 {
		t.Fatalf("crash-point test expects no checkpoints, found %v", cks)
	}
	writeCrashWAL(t, dst, segs, p, torn)
	return dst
}

// buildRunLayoutCrashDir is buildCrashDir for a directory carrying an
// incremental-checkpoint layout: the manifests, base image, and delta
// runs are copied intact (they are atomically written and immutable
// once a manifest references them) while the WAL is truncated at the
// crash point.
func buildRunLayoutCrashDir(t *testing.T, srcDir string, segs []string, p crashPoint, torn []byte) string {
	t.Helper()
	dst := t.TempDir()
	for _, pat := range []string{"checkpoint-*.ckpt", "run-*.run", "manifest-*.mft"} {
		names, err := filepath.Glob(filepath.Join(srcDir, pat))
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range names {
			data, err := os.ReadFile(name)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dst, filepath.Base(name)), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	writeCrashWAL(t, dst, segs, p, torn)
	return dst
}

// writeCrashWAL copies the WAL into dst truncated at crash point p,
// with optional torn garbage after the boundary.
func writeCrashWAL(t *testing.T, dst string, segs []string, p crashPoint, torn []byte) {
	t.Helper()
	walDst := filepath.Join(dst, "wal")
	if err := os.MkdirAll(walDst, 0o755); err != nil {
		t.Fatal(err)
	}
	for si, seg := range segs {
		if si > p.segIdx {
			break
		}
		data, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		if si == p.segIdx {
			data = data[:p.end]
		}
		data = append(append([]byte(nil), data...), torn...)
		if err := os.WriteFile(filepath.Join(walDst, filepath.Base(seg)), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDurableCrashRecoveryProperty is the acceptance contract: over
// {ELSH, MinHash} × interning on/off, for EVERY record-boundary crash
// point — clean truncation and torn-tail variants — restore+replay
// yields a state image bit-identical to the in-memory service that
// applied exactly the surviving records.
func TestDurableCrashRecoveryProperty(t *testing.T) {
	torn := []byte{0x13, 0x00, 0x00, 0x00, 0xaa, 0xbb, 0xcc, 0xdd, 0x01, 0x02}
	for _, method := range []pghive.Method{pghive.ELSH, pghive.MinHash} {
		for _, intern := range []bool{true, false} {
			opts := pghive.Options{Seed: 7, Method: method, DisableShapeInterning: !intern}
			t.Run(fmt.Sprintf("%v/intern=%v", method, intern), func(t *testing.T) {
				fx := newDurableFixture(t, opts)
				ref := fx.referenceImages(t)

				dir := t.TempDir()
				// Small segments force rotation, so crash points span
				// multiple files.
				dopts := pghive.DurableOptions{NoSync: true, DisableAutoCompact: true, SegmentBytes: 32 << 10}
				fx.runDurable(t, dir, dopts, -1)

				segs := walSegments(t, dir)
				if len(segs) < 2 {
					t.Fatalf("want multiple WAL segments for multi-file crash points, got %d", len(segs))
				}
				points := crashPoints(t, segs)
				if len(points) != len(ref) {
					t.Fatalf("%d crash points but %d reference states", len(points), len(ref))
				}

				for _, p := range points {
					for variant, tail := range map[string][]byte{"clean": nil, "torn": torn} {
						crashDir := buildCrashDir(t, dir, segs, p, tail)
						rec, err := pghive.OpenDurable(crashDir, opts, dopts)
						if err != nil {
							t.Fatalf("recover at %d records (%s): %v", p.records, variant, err)
						}
						img := serviceImage(t, rec)
						rec.Close()
						if !bytes.Equal(img, ref[p.records]) {
							t.Fatalf("recovery at %d records (%s) diverges from uninterrupted run", p.records, variant)
						}
					}
				}
			})
		}
	}
}

// TestDurableCompactionRoundTrip covers the incremental (LSM-style)
// checkpoint lifecycle end to end: compactions append delta runs to
// the manifest until the chain crosses MaxRuns and folds into a fresh
// base image; every intermediate generation recovers bit-identically;
// retention keeps exactly the current and previous generations; the
// WAL is pruned to the manifest's floor (one generation of slack);
// and record-boundary crashes on top of the run layout recover like
// they do on a bare WAL.
func TestDurableCompactionRoundTrip(t *testing.T) {
	opts := pghive.Options{Seed: 7}
	fx := newDurableFixture(t, opts)
	ref := fx.referenceImages(t)

	dir := t.TempDir()
	// MaxRuns 3 makes the fourth compaction fold; the tombstone ratio
	// is effectively disabled so chain length alone decides folds and
	// the generation sequence below is deterministic.
	dopts := pghive.DurableOptions{
		NoSync: true, DisableAutoCompact: true, SegmentBytes: 16 << 10,
		MaxRuns: 3, MaxTombstoneRatio: 1e9,
	}
	d, err := pghive.OpenDurable(dir, fx.opts, dopts)
	if err != nil {
		t.Fatal(err)
	}

	// snaps freezes the directory right after each compaction — the
	// file state a crash at that moment leaves behind.
	type genSnap struct {
		dir     string
		records int
	}
	var snaps []genSnap
	compact := func(records int, wantSeq uint64, wantRuns int, wantBaseLSN uint64) {
		t.Helper()
		if err := d.Compact(); err != nil {
			t.Fatal(err)
		}
		st := d.DurableStats()
		if st.ManifestSeq != wantSeq || st.Runs != wantRuns || st.BaseLSN != wantBaseLSN || st.CheckpointLSN != uint64(records) {
			t.Fatalf("after compaction at %d records: seq=%d runs=%d baseLSN=%d covered=%d, want seq=%d runs=%d baseLSN=%d covered=%d",
				records, st.ManifestSeq, st.Runs, st.BaseLSN, st.CheckpointLSN, wantSeq, wantRuns, wantBaseLSN, records)
		}
		if st.RecoveryFallbacks != 0 || st.GCFailures != 0 {
			t.Fatalf("healthy run reports fallbacks=%d gcFailures=%d", st.RecoveryFallbacks, st.GCFailures)
		}
		snap := t.TempDir()
		copyTree(t, dir, snap)
		snaps = append(snaps, genSnap{dir: snap, records: records})
	}

	for i, g := range fx.ingests {
		if _, err := d.Ingest(g); err != nil {
			t.Fatal(err)
		}
		if i < 3 {
			// The chain grows: one delta run per compaction on the
			// (empty) base.
			compact(i+1, uint64(i+1), i+1, 0)
		} else {
			// A fourth run would exceed MaxRuns=3: leveled fold into a
			// fresh base image; the chain resets.
			compact(4, 4, 0, 4)
		}
	}
	if _, err := d.Retract(fx.retract); err != nil {
		t.Fatal(err)
	}
	compact(5, 5, 1, 4)
	if st := d.DurableStats(); st.RunTombstones == 0 {
		t.Fatal("retraction delta run carries no tombstones")
	}
	if err := d.DrainStream(pghive.NewJSONLStream(bytes.NewReader(fx.streamData), fx.streamBS), nil); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Exactly the current and previous generations survive on disk:
	// the fold's base image, the retraction run, manifests 4 and 5.
	// Everything superseded — runs 1..3, manifests 1..3 — was swept.
	wantFiles := []string{
		fmt.Sprintf("checkpoint-%020d.ckpt", 4),
		fmt.Sprintf("manifest-%020d.mft", 4),
		fmt.Sprintf("manifest-%020d.mft", 5),
		fmt.Sprintf("run-%020d-%020d.run", 4, 5),
	}
	var gotFiles []string
	for _, pat := range []string{"checkpoint-*.ckpt", "run-*.run", "manifest-*.mft", "*.tmp"} {
		names, err := filepath.Glob(filepath.Join(dir, pat))
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range names {
			gotFiles = append(gotFiles, filepath.Base(n))
		}
	}
	sort.Strings(gotFiles)
	if fmt.Sprint(gotFiles) != fmt.Sprint(wantFiles) {
		t.Fatalf("layout files after final compaction:\n  got  %v\n  want %v", gotFiles, wantFiles)
	}

	// WAL retention: generation 5's floor is generation 4's coverage
	// (LSN 4), so records 1-4 are pruned and record 5 — needed to
	// replay on top of generation 4 if generation 5 turns out torn —
	// survives.
	segs := walSegments(t, dir)
	minLSN := uint64(1<<63 - 1)
	for _, seg := range segs {
		f, err := os.Open(seg)
		if err != nil {
			t.Fatal(err)
		}
		wal.ScanSegment(f, func(r wal.Record) error {
			if r.LSN < minLSN {
				minLSN = r.LSN
			}
			return nil
		})
		f.Close()
	}
	if minLSN != 5 {
		t.Fatalf("oldest surviving WAL record is %d, want 5 (floor = previous generation's coverage)", minLSN)
	}

	// Every mid-script generation snapshot recovers bit-identically —
	// run-on-empty-base, multi-run chains, post-fold, run-on-base.
	for _, s := range snaps {
		rec, err := pghive.OpenDurable(s.dir, opts, dopts)
		if err != nil {
			t.Fatalf("recover generation snapshot at %d records: %v", s.records, err)
		}
		img := serviceImage(t, rec)
		st := rec.DurableStats()
		rec.Close()
		if !bytes.Equal(img, ref[s.records]) {
			t.Fatalf("recovery from generation snapshot at %d records diverges", s.records)
		}
		if st.RecoveryFallbacks != 0 {
			t.Fatalf("snapshot at %d records needed %d fallbacks on a healthy disk", s.records, st.RecoveryFallbacks)
		}
	}

	// Record-boundary crashes over the run layout: manifest + base +
	// run intact, WAL truncated at every boundary, clean and torn.
	// Retained records start at LSN 5 and records ≤ 5 are folded into
	// the generation, so recovery never regresses below ref[5].
	torn := []byte{0x13, 0x00, 0x00, 0x00, 0xaa, 0xbb, 0xcc, 0xdd, 0x01, 0x02}
	for _, p := range crashPoints(t, segs) {
		for variant, tail := range map[string][]byte{"clean": nil, "torn": torn} {
			crashDir := buildRunLayoutCrashDir(t, dir, segs, p, tail)
			rec, err := pghive.OpenDurable(crashDir, opts, dopts)
			if err != nil {
				t.Fatalf("recover at %d retained records (%s): %v", p.records, variant, err)
			}
			img := serviceImage(t, rec)
			rec.Close()
			want := max(4+p.records, 5)
			if !bytes.Equal(img, ref[want]) {
				t.Fatalf("recovery at %d retained records (%s) diverges from uninterrupted run", p.records, variant)
			}
		}
	}

	// The reopened service equals the uninterrupted run and keeps
	// accepting writes: the retracted batch's IDs are free again, so
	// re-ingesting it is a legal new mutation mirrored on the
	// reference.
	rec, err := pghive.OpenDurable(dir, opts, dopts)
	if err != nil {
		t.Fatal(err)
	}
	if got := serviceImage(t, rec); !bytes.Equal(got, ref[len(ref)-1]) {
		t.Fatal("state after reopen diverges from uninterrupted run")
	}
	if got := rec.CheckpointLSN(); got != 5 {
		t.Fatalf("CheckpointLSN after reopen = %d, want 5", got)
	}
	refSvc := pghive.NewService(opts)
	replayReference(t, refSvc, fx)
	if _, err := rec.Ingest(fx.retract); err != nil {
		t.Fatal(err)
	}
	refSvc.Ingest(fx.retract)
	liveImg := serviceImage(t, rec)
	if !bytes.Equal(liveImg, serviceImage(t, refSvc)) {
		t.Fatal("post-recovery write diverges from reference")
	}

	// Another compaction folds the drained tail + new ingest into a
	// second run without changing the served state, and the directory
	// still recovers.
	if err := rec.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := serviceImage(t, rec); !bytes.Equal(got, liveImg) {
		t.Fatal("compaction changed the served state")
	}
	if st := rec.DurableStats(); st.ManifestSeq != 6 || st.Runs != 2 || st.BaseLSN != 4 {
		t.Fatalf("after post-recovery compaction: seq=%d runs=%d baseLSN=%d, want seq=6 runs=2 baseLSN=4", st.ManifestSeq, st.Runs, st.BaseLSN)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	rec2, err := pghive.OpenDurable(dir, opts, dopts)
	if err != nil {
		t.Fatal(err)
	}
	if got := serviceImage(t, rec2); !bytes.Equal(got, liveImg) {
		t.Fatal("recovery after second compaction cycle diverges")
	}
	rec2.Close()
}

// replayReference applies the whole fixture script to a plain service.
func replayReference(t *testing.T, svc *pghive.Service, fx *durableFixture) {
	t.Helper()
	for _, g := range fx.ingests {
		svc.Ingest(g)
	}
	svc.Retract(fx.retract)
	if err := svc.DrainStream(pghive.NewJSONLStream(bytes.NewReader(fx.streamData), fx.streamBS), nil); err != nil {
		t.Fatal(err)
	}
}

// stressGraph builds a small explicit-ID graph so concurrent writers
// can ingest disjoint namespaces.
func stressGraph(t testing.TB, base pghive.ID, n int) *pghive.Graph {
	g := pghive.NewGraph()
	for i := 0; i < n; i++ {
		id := base + pghive.ID(i)
		if err := g.PutNode(id, []string{"Stress"}, map[string]pghive.Value{
			"k": pghive.Int(int64(i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		src := base + pghive.ID(i)
		dst := base + pghive.ID((i+1)%n)
		if err := g.PutEdge(base+pghive.ID(i), []string{"NEXT"}, src, dst, nil); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// TestDurableServiceConcurrentStress runs writers, lock-free readers,
// and an aggressive background compactor together under the race
// detector, then proves the WAL-ordered history recovers to exactly
// the live final state.
func TestDurableServiceConcurrentStress(t *testing.T) {
	opts := pghive.Options{Seed: 3, Parallelism: 1}
	dir := t.TempDir()
	d, err := pghive.OpenDurable(dir, opts, pghive.DurableOptions{
		NoSync:          true,
		SegmentBytes:    2 << 10,
		CompactInterval: 2 * time.Millisecond,
		OnCompactError:  func(err error) { t.Errorf("background compaction: %v", err) },
	})
	if err != nil {
		t.Fatal(err)
	}

	const writers, iters, span = 3, 12, 10
	var writerWG, readerWG sync.WaitGroup
	writersDone := make(chan struct{})
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < iters; i++ {
				base := pghive.ID(1_000_000*w + 1_000*i)
				g := stressGraph(t, base, span)
				if _, err := d.Ingest(g); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				if i%3 == 2 {
					if _, err := d.Retract(g); err != nil {
						t.Errorf("writer %d retract: %v", w, err)
						return
					}
				}
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for {
				select {
				case <-writersDone:
					return
				default:
				}
				snap := d.Snapshot()
				if snap.Stats.NodeTypes != len(snap.Schema.NodeTypes) {
					t.Error("snapshot stats disagree with snapshot schema")
					return
				}
			}
		}()
	}
	writerWG.Wait()
	close(writersDone)
	readerWG.Wait()

	liveImg := serviceImage(t, d)
	liveStats := d.Stats()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := pghive.OpenDurable(dir, opts, pghive.DurableOptions{NoSync: true, DisableAutoCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if got := serviceImage(t, rec); !bytes.Equal(got, liveImg) {
		t.Fatal("recovered state diverges from the live service's final state")
	}
	if got := rec.Stats(); got.Batches != liveStats.Batches || got.Nodes != liveStats.Nodes || got.Edges != liveStats.Edges {
		t.Fatalf("recovered stats %+v, live %+v", got, liveStats)
	}
}

// TestOpenDurableRejectsCorruptCheckpoint: a checkpoint that cannot
// be parsed is a hard error (atomic writes mean no crash produces
// one), never a silent empty restart.
func TestOpenDurableRejectsCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, fmt.Sprintf("checkpoint-%020d.ckpt", 3))
	if err := os.WriteFile(path, []byte("{not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := pghive.OpenDurable(dir, pghive.Options{Seed: 1}, pghive.DurableOptions{NoSync: true, DisableAutoCompact: true}); err == nil {
		t.Fatal("OpenDurable accepted a corrupt checkpoint")
	}
}

// writeMemFile creates a file with the given contents on a MemFS
// (durably: the test junk must survive nothing, but must exist).
func writeMemFile(t *testing.T, mem *vfs.MemFS, path string, data []byte) {
	t.Helper()
	f, err := mem.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// memExists reports whether path exists on mem.
func memExists(t *testing.T, mem *vfs.MemFS, path string) bool {
	t.Helper()
	_, err := mem.Stat(path)
	return err == nil
}

// TestDurableGCSweep is the regression for the first
// checkpoint-lifecycle bug: the pre-fix code deleted only the
// immediately previous checkpoint and silently discarded the removal
// error, so a crash between rename and remove — or one failed
// remove — orphaned files forever. The sweep now garbage-collects
// every unreferenced checkpoint, run, manifest, and temp file at
// startup and after each compaction, surfaces removal failures in
// DurableStats, and retries them on the next sweep.
func TestDurableGCSweep(t *testing.T) {
	opts := pghive.Options{Seed: 5, Parallelism: 1}
	const dataDir = "data"
	g1, g2, g3 := stressGraph(t, 0, 6), stressGraph(t, 1000, 6), stressGraph(t, 2000, 6)
	dopts := func(fsys vfs.FS) pghive.DurableOptions {
		return pghive.DurableOptions{FS: fsys, NoSync: true, DisableAutoCompact: true}
	}

	// build produces a directory with one committed generation (a
	// delta run on the empty base) plus a WAL tail record, cleanly
	// closed.
	build := func(t *testing.T) *vfs.MemFS {
		t.Helper()
		mem := vfs.NewMemFS()
		d, err := pghive.OpenDurable(dataDir, opts, dopts(mem))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.Ingest(g1); err != nil {
			t.Fatal(err)
		}
		if err := d.Compact(); err != nil {
			t.Fatal(err)
		}
		if _, err := d.Ingest(g2); err != nil {
			t.Fatal(err)
		}
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
		return mem
	}
	// Stale residue no generation references: an ancient orphaned
	// image (the exact file class the pre-fix code leaked), an
	// uncommitted run, and an interrupted atomic-write temp file.
	junk := []string{
		filepath.Join(dataDir, fmt.Sprintf("checkpoint-%020d.ckpt", 7)),
		filepath.Join(dataDir, fmt.Sprintf("run-%020d-%020d.run", 7, 8)),
		filepath.Join(dataDir, "checkpoint-stale-1234.tmp"),
	}

	t.Run("startup sweep", func(t *testing.T) {
		mem := build(t)
		for _, p := range junk {
			writeMemFile(t, mem, p, []byte("stale junk\n"))
		}
		// A corrupt manifest with a HIGHER sequence than the live one:
		// recovery must skip it loudly, sweep it, and still never
		// allocate a generation number at or below it.
		corruptMan := filepath.Join(dataDir, fmt.Sprintf("manifest-%020d.mft", 9))
		writeMemFile(t, mem, corruptMan, []byte("not a manifest\n"))

		d, err := pghive.OpenDurable(dataDir, opts, dopts(mem))
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		st := d.DurableStats()
		if st.RecoveryFallbacks != 1 {
			t.Errorf("RecoveryFallbacks = %d, want 1 (the corrupt manifest)", st.RecoveryFallbacks)
		}
		if st.GCFailures != 0 || st.LastGCError != "" {
			t.Errorf("healthy sweep reports failures: %d %q", st.GCFailures, st.LastGCError)
		}
		for _, p := range append(junk, corruptMan) {
			if memExists(t, mem, p) {
				t.Errorf("startup sweep left %s behind", p)
			}
		}
		// The live generation's files survive the sweep.
		if !memExists(t, mem, filepath.Join(dataDir, fmt.Sprintf("manifest-%020d.mft", 1))) ||
			!memExists(t, mem, filepath.Join(dataDir, fmt.Sprintf("run-%020d-%020d.run", 0, 1))) {
			t.Error("sweep removed the live generation's files")
		}
		if _, err := d.Ingest(g3); err != nil {
			t.Fatal(err)
		}
		if err := d.Compact(); err != nil {
			t.Fatal(err)
		}
		if got := d.DurableStats().ManifestSeq; got != 10 {
			t.Errorf("generation after sweeping a corrupt seq-9 manifest = %d, want 10 (corrupt files floor the allocator)", got)
		}
	})

	t.Run("remove failures surfaced and retried", func(t *testing.T) {
		mem := build(t)
		for _, p := range junk {
			writeMemFile(t, mem, p, []byte("stale junk\n"))
		}
		// Every removal the startup sweep attempts fails — the disk
		// refuses deletes. Pre-fix this was silent; now it must be
		// counted, reported, and retried.
		plan := vfs.NewPlan(
			vfs.Fault{Op: vfs.OpRemove, N: 1, Mode: vfs.FailEarly},
			vfs.Fault{Op: vfs.OpRemove, N: 2, Mode: vfs.FailEarly},
			vfs.Fault{Op: vfs.OpRemove, N: 3, Mode: vfs.FailEarly},
		)
		d, err := pghive.OpenDurable(dataDir, opts, dopts(vfs.NewInjectFS(mem, plan)))
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		st := d.DurableStats()
		if st.GCFailures != int64(len(junk)) {
			t.Errorf("GCFailures = %d, want %d", st.GCFailures, len(junk))
		}
		if st.LastGCError == "" {
			t.Error("removal failures left LastGCError empty")
		}
		for _, p := range junk {
			if !memExists(t, mem, p) {
				t.Errorf("%s vanished although its removal failed", p)
			}
		}
		// The next sweep — here via an explicit compaction round —
		// retries the same files and succeeds once the faults are
		// spent.
		if err := d.Compact(); err != nil {
			t.Fatal(err)
		}
		for _, p := range junk {
			if memExists(t, mem, p) {
				t.Errorf("retry sweep left %s behind", p)
			}
		}
		if got := d.DurableStats().GCFailures; got != int64(len(junk)) {
			t.Errorf("GCFailures after successful retry = %d, want %d (cumulative counter)", got, len(junk))
		}
	})
}

// TestDurableRecoveryGenerationFallback is the regression for the
// second checkpoint-lifecycle bug: recovery must not trust the newest
// generation's files just because they exist under the right names. A
// zero-byte, truncated, or bit-flipped newest manifest, run, or base
// image — what a crash on a lying disk leaves despite WriteFileAtomic
// — falls back LOUDLY to the previous consistent generation, whose
// WAL records were deliberately retained, and recovers the identical
// state, counting the skip in DurableStats.RecoveryFallbacks. Only
// when no generation survives at all does recovery fail, and it fails
// with an error, never a silent empty restart.
func TestDurableRecoveryGenerationFallback(t *testing.T) {
	opts := pghive.Options{Seed: 5, Parallelism: 1}
	graphs := []*pghive.Graph{
		stressGraph(t, 0, 6), stressGraph(t, 1000, 6),
		stressGraph(t, 2000, 6), stressGraph(t, 3000, 6),
	}
	// MaxRuns 1: compaction 1 writes a run on the empty base (gen 1),
	// compaction 2 folds into a base image (gen 2), compaction 3 puts
	// a run on that base (gen 3); the fourth ingest stays in the WAL.
	dopts := pghive.DurableOptions{
		NoSync: true, DisableAutoCompact: true, SegmentBytes: 2048,
		MaxRuns: 1, MaxTombstoneRatio: 1e9,
	}
	refSvc := pghive.NewService(opts)
	var refs [][]byte
	for _, g := range graphs {
		refSvc.Ingest(g)
		refs = append(refs, serviceImage(t, refSvc))
	}

	dir := t.TempDir()
	d, err := pghive.OpenDurable(dir, opts, dopts)
	if err != nil {
		t.Fatal(err)
	}
	var foldSnap string // directory state right after the fold (gen 2)
	for i, g := range graphs {
		if _, err := d.Ingest(g); err != nil {
			t.Fatal(err)
		}
		if i < 3 {
			if err := d.Compact(); err != nil {
				t.Fatal(err)
			}
		}
		if i == 1 {
			foldSnap = t.TempDir()
			copyTree(t, dir, foldSnap)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	manifest := func(seq uint64) string { return fmt.Sprintf("manifest-%020d.mft", seq) }
	base2 := fmt.Sprintf("checkpoint-%020d.ckpt", 2)
	run23 := fmt.Sprintf("run-%020d-%020d.run", 2, 3)

	// corruptAndRecover copies src, applies mutate, and opens it;
	// recovery must succeed, match want, report at least minFallbacks
	// skipped generations, and come back writable.
	corruptAndRecover := func(t *testing.T, src string, mutate func(t *testing.T, dir string), want []byte, minFallbacks int) *pghive.DurableService {
		t.Helper()
		cp := t.TempDir()
		copyTree(t, src, cp)
		mutate(t, cp)
		rec, err := pghive.OpenDurable(cp, opts, dopts)
		if err != nil {
			t.Fatalf("fallback recovery failed: %v", err)
		}
		t.Cleanup(func() { rec.Close() })
		if got := serviceImage(t, rec); !bytes.Equal(got, want) {
			t.Fatal("fallback recovery diverges from the acked state")
		}
		st := rec.DurableStats()
		if st.RecoveryFallbacks < minFallbacks {
			t.Fatalf("RecoveryFallbacks = %d, want >= %d", st.RecoveryFallbacks, minFallbacks)
		}
		if st.ReadOnly {
			t.Fatal("fallback recovery came back read-only")
		}
		return rec
	}
	truncateTo := func(path string, n int64) func(*testing.T, string) {
		return func(t *testing.T, dir string) {
			t.Helper()
			if err := os.Truncate(filepath.Join(dir, path), n); err != nil {
				t.Fatal(err)
			}
		}
	}
	flipLastByte := func(path string) func(*testing.T, string) {
		return func(t *testing.T, dir string) {
			t.Helper()
			p := filepath.Join(dir, path)
			data, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)-1] ^= 0xFF
			if err := os.WriteFile(p, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}

	t.Run("zero-byte newest manifest", func(t *testing.T) {
		corruptAndRecover(t, dir, truncateTo(manifest(3), 0), refs[3], 1)
	})
	t.Run("truncated newest manifest", func(t *testing.T) {
		corruptAndRecover(t, dir, truncateTo(manifest(3), 40), refs[3], 1)
	})
	t.Run("bit-flipped newest run", func(t *testing.T) {
		corruptAndRecover(t, dir, flipLastByte(run23), refs[3], 1)
	})
	t.Run("missing newest run", func(t *testing.T) {
		corruptAndRecover(t, dir, func(t *testing.T, dir string) {
			if err := os.Remove(filepath.Join(dir, run23)); err != nil {
				t.Fatal(err)
			}
		}, refs[3], 1)
	})
	t.Run("zero-byte fold base falls back to pre-fold generation", func(t *testing.T) {
		// On the fold snapshot, generation 2's freshly written base
		// image is torn; generation 1 (empty base + first run) plus
		// the retained WAL recovers records 1-2.
		corruptAndRecover(t, foldSnap, truncateTo(base2, 0), refs[1], 1)
	})
	t.Run("all manifests corrupt falls back to the bare image", func(t *testing.T) {
		// Both manifest generations torn: the base image itself is
		// still a valid (legacy-layout) starting point, and the WAL
		// floor retained everything above it.
		rec := corruptAndRecover(t, dir, func(t *testing.T, dir string) {
			truncateTo(manifest(2), 0)(t, dir)
			truncateTo(manifest(3), 0)(t, dir)
		}, refs[3], 2)
		// The next compaction must allocate a generation above every
		// corrupt manifest it skipped.
		if err := rec.Compact(); err != nil {
			t.Fatal(err)
		}
		if got := rec.DurableStats().ManifestSeq; got != 4 {
			t.Fatalf("generation after fallback compaction = %d, want 4", got)
		}
	})
	t.Run("no generation recovers fails loudly", func(t *testing.T) {
		cp := t.TempDir()
		copyTree(t, dir, cp)
		for _, p := range []string{manifest(2), manifest(3)} {
			if err := os.Truncate(filepath.Join(cp, p), 0); err != nil {
				t.Fatal(err)
			}
		}
		if err := os.Remove(filepath.Join(cp, base2)); err != nil {
			t.Fatal(err)
		}
		if _, err := pghive.OpenDurable(cp, opts, dopts); err == nil {
			t.Fatal("recovery from a directory with no consistent generation silently succeeded")
		}
	})
}

// TestDurableCompactionFaultCrashPoints drives an injected fault into
// every write-path operation of one compaction round — the run or
// base-image write, the manifest swap, the GC sweep, the WAL prune,
// and all their syncs and renames — in every failure mode (short
// write, fail-before, lying fail-after), then crashes the filesystem
// and recovers fault-free. A compaction changes no logical state, so
// the property is absolute: recovery lands on exactly the acked
// state, healthy, no matter where inside the round the disk lied.
func TestDurableCompactionFaultCrashPoints(t *testing.T) {
	opts := pghive.Options{Seed: 11, Parallelism: 1}
	const dataDir = "data"
	graphs := []*pghive.Graph{
		stressGraph(t, 0, 5), stressGraph(t, 1000, 5),
		stressGraph(t, 2000, 5), stressGraph(t, 3000, 5),
	}
	refSvc := pghive.NewService(opts)
	for _, g := range graphs {
		refSvc.Ingest(g)
	}
	refImg := serviceImage(t, refSvc)

	// Two flavors of faulted round: with MaxRuns 1 the prior chain
	// (one run) forces a FOLD — base-image write + manifest swap; with
	// MaxRuns high the round writes a delta RUN + manifest swap.
	for _, tc := range []struct {
		name    string
		maxRuns int
	}{{"fold", 1}, {"run", 100}} {
		t.Run(tc.name, func(t *testing.T) {
			dopts := func(fsys vfs.FS) pghive.DurableOptions {
				return pghive.DurableOptions{
					FS: fsys, DisableAutoCompact: true, SegmentBytes: 2048,
					MaxRuns: tc.maxRuns, MaxTombstoneRatio: 1e9,
				}
			}
			// buildPrefix acks all four graphs with one mid-script
			// compaction (so a prior generation exists) and closes
			// cleanly — everything acked is synced and crash-durable.
			buildPrefix := func(t *testing.T) *vfs.MemFS {
				t.Helper()
				mem := vfs.NewMemFS()
				d, err := pghive.OpenDurable(dataDir, opts, dopts(mem))
				if err != nil {
					t.Fatal(err)
				}
				for i, g := range graphs {
					if _, err := d.Ingest(g); err != nil {
						t.Fatal(err)
					}
					if i == 1 {
						if err := d.Compact(); err != nil {
							t.Fatal(err)
						}
					}
				}
				if err := d.Close(); err != nil {
					t.Fatal(err)
				}
				return mem
			}

			// Probe run: count the operations of reopen alone, then of
			// reopen + one compaction — faults target the difference,
			// i.e. positions inside the compaction round.
			probeOpen := vfs.NewPlan()
			mem := buildPrefix(t)
			d, err := pghive.OpenDurable(dataDir, opts, dopts(vfs.NewInjectFS(mem, probeOpen)))
			if err != nil {
				t.Fatal(err)
			}
			opsOpen := probeOpen.Ops()
			if err := d.Compact(); err != nil {
				t.Fatal(err)
			}
			opsTotal := probeOpen.Ops()
			d.Close()

			for _, op := range []vfs.Op{vfs.OpOpen, vfs.OpWrite, vfs.OpSync, vfs.OpSyncDir, vfs.OpRename, vfs.OpRemove} {
				if opsTotal[op] == opsOpen[op] {
					continue // the round performs no operation of this kind
				}
				modes := []vfs.Mode{vfs.FailEarly, vfs.FailLate}
				if op == vfs.OpWrite {
					modes = append(modes, vfs.ShortWrite)
				}
				for n := opsOpen[op] + 1; n <= opsTotal[op]; n++ {
					for _, mode := range modes {
						fault := vfs.Fault{Op: op, N: n, Mode: mode}
						mem := buildPrefix(t)
						plan := vfs.NewPlan(fault)
						d, err := pghive.OpenDurable(dataDir, opts, dopts(vfs.NewInjectFS(mem, plan)))
						if err != nil {
							t.Fatalf("%v: reopen before the faulted round failed: %v", fault, err)
						}
						// The faulted round: may fail, may "succeed" on
						// a lying disk — either way no logical change.
						_ = d.Compact()
						if len(plan.Fired()) == 0 {
							t.Fatalf("%v: fault never fired — probe counts drifted", fault)
						}
						mem.Crash()
						rec, err := pghive.OpenDurable(dataDir, opts, dopts(mem))
						if err != nil {
							t.Fatalf("%v: recovery after faulted compaction + crash failed: %v", fault, err)
						}
						img := serviceImage(t, rec)
						st := rec.DurableStats()
						rec.Close()
						if !bytes.Equal(img, refImg) {
							t.Fatalf("%v: recovery diverges from the acked state", fault)
						}
						if st.ReadOnly || st.WALBroken {
							t.Fatalf("%v: recovery on a healthy disk came back degraded: %+v", fault, st)
						}
					}
				}
			}
		})
	}
}

// TestOpenDurableRejectsUnknownRecordType: a WAL record whose type
// the replayer does not know must fail recovery loudly.
func TestOpenDurableRejectsUnknownRecordType(t *testing.T) {
	dir := t.TempDir()
	l, err := wal.Open(filepath.Join(dir, "wal"), wal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(99, []byte(`{"kind":"node","id":1}`+"\n")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := pghive.OpenDurable(dir, pghive.Options{Seed: 1}, pghive.DurableOptions{NoSync: true, DisableAutoCompact: true}); err == nil {
		t.Fatal("OpenDurable accepted an unknown WAL record type")
	}
}
