package pghive_test

// Durable-service crash-recovery property tests. The contract: for a
// service whose every mutation is write-ahead logged, kill -9 at ANY
// record boundary must recover — newest checkpoint + WAL tail replay
// — to a state bit-identical (checkpoint-image bytes, which cover
// schema, per-element assignments, counters, shape caches, endpoint
// bookkeeping, and the edge-ID watermark) to a plain in-memory
// service that applied exactly the records the log retained. Crash
// simulation is file-level: the data directory is copied or the WAL
// truncated at record boundaries (with optional torn garbage
// appended), and a fresh OpenDurable recovers from the files alone.

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	pghive "github.com/pghive/pghive"
	"github.com/pghive/pghive/internal/datagen"
	"github.com/pghive/pghive/internal/wal"
)

// durableFixture is one deterministic mutation script: four ingest
// batches, a retraction of the second, and a streamed drain — every
// write-path kind the WAL records.
type durableFixture struct {
	opts       pghive.Options
	ingests    []*pghive.Graph
	retract    *pghive.Graph
	streamData []byte
	streamBS   int
}

func newDurableFixture(t *testing.T, opts pghive.Options) *durableFixture {
	t.Helper()
	d := datagen.Generate(datagen.LDBC(), 0.15, 42)
	batches := pghive.SplitBatches(d.Graph, 8, rand.New(rand.NewSource(9)))
	if len(batches) != 8 {
		t.Fatalf("split into %d batches, want 8", len(batches))
	}
	fx := &durableFixture{opts: opts, streamBS: 300}
	for _, b := range batches[:4] {
		fx.ingests = append(fx.ingests, b.Graph)
	}
	fx.retract = batches[1].Graph
	var buf bytes.Buffer
	for _, b := range batches[4:] {
		if err := pghive.WriteJSONL(&buf, b.Graph); err != nil {
			t.Fatal(err)
		}
	}
	fx.streamData = buf.Bytes()
	return fx
}

// serviceImage serializes a service's full state; two services whose
// images are byte-equal are indistinguishable to every read and every
// future write.
func serviceImage(t *testing.T, s interface{ WriteCheckpoint(io.Writer) error }) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// referenceImages applies the script on a plain in-memory Service,
// capturing the state image after every record-sized step: ref[0] is
// the empty service, ref[i] the state after the first i WAL records.
func (fx *durableFixture) referenceImages(t *testing.T) [][]byte {
	t.Helper()
	svc := pghive.NewService(fx.opts)
	imgs := [][]byte{serviceImage(t, svc)}
	for _, g := range fx.ingests {
		svc.Ingest(g)
		imgs = append(imgs, serviceImage(t, svc))
	}
	svc.Retract(fx.retract)
	imgs = append(imgs, serviceImage(t, svc))
	st := pghive.NewJSONLStream(bytes.NewReader(fx.streamData), fx.streamBS)
	for {
		b, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		svc.Ingest(b.Graph)
		imgs = append(imgs, serviceImage(t, svc))
	}
	return imgs
}

// runDurable applies the script through the durable API. compactAt,
// when >= 0, triggers a manual compaction after that mutation index
// (0-based over the 6 mutations).
func (fx *durableFixture) runDurable(t *testing.T, dir string, dopts pghive.DurableOptions, compactAt int) {
	t.Helper()
	d, err := pghive.OpenDurable(dir, fx.opts, dopts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	step := 0
	maybeCompact := func() {
		if step == compactAt {
			if err := d.Compact(); err != nil {
				t.Fatal(err)
			}
		}
		step++
	}
	for _, g := range fx.ingests {
		if _, err := d.Ingest(g); err != nil {
			t.Fatal(err)
		}
		maybeCompact()
	}
	if _, err := d.Retract(fx.retract); err != nil {
		t.Fatal(err)
	}
	maybeCompact()
	if err := d.DrainStream(pghive.NewJSONLStream(bytes.NewReader(fx.streamData), fx.streamBS), nil); err != nil {
		t.Fatal(err)
	}
	maybeCompact()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

// copyTree copies a directory recursively (the point-in-time file
// state a crash freezes).
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// walSegments lists a data directory's WAL segment files in LSN order.
func walSegments(t *testing.T, dir string) []string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal", "*.wal"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(segs)
	return segs
}

// crashPoint is one record boundary across the whole log: records is
// the number of complete records at (and before) it.
type crashPoint struct {
	segIdx  int
	end     int64
	records int
}

// crashPoints enumerates every record boundary, including the empty
// log (0 records).
func crashPoints(t *testing.T, segs []string) []crashPoint {
	t.Helper()
	points := []crashPoint{{segIdx: -1}}
	records := 0
	for si, seg := range segs {
		ends, err := wal.RecordEnds(nil, seg)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ends {
			records++
			points = append(points, crashPoint{segIdx: si, end: e, records: records})
		}
	}
	return points
}

// buildCrashDir materializes the file state of a crash at p: segments
// before p's are intact, p's segment is truncated at the boundary,
// later segments never existed. torn, when non-nil, is appended after
// the boundary — the half-written record the crash interrupted.
func buildCrashDir(t *testing.T, srcDir string, segs []string, p crashPoint, torn []byte) string {
	t.Helper()
	dst := t.TempDir()
	walDst := filepath.Join(dst, "wal")
	if err := os.MkdirAll(walDst, 0o755); err != nil {
		t.Fatal(err)
	}
	// Checkpoint images predate every crash point in these tests
	// (compaction variants copy the whole tree instead).
	cks, err := filepath.Glob(filepath.Join(srcDir, "checkpoint-*.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(cks) != 0 {
		t.Fatalf("crash-point test expects no checkpoints, found %v", cks)
	}
	for si, seg := range segs {
		if si > p.segIdx {
			break
		}
		data, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		if si == p.segIdx {
			data = data[:p.end]
		}
		data = append(append([]byte(nil), data...), torn...)
		if err := os.WriteFile(filepath.Join(walDst, filepath.Base(seg)), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestDurableCrashRecoveryProperty is the acceptance contract: over
// {ELSH, MinHash} × interning on/off, for EVERY record-boundary crash
// point — clean truncation and torn-tail variants — restore+replay
// yields a state image bit-identical to the in-memory service that
// applied exactly the surviving records.
func TestDurableCrashRecoveryProperty(t *testing.T) {
	torn := []byte{0x13, 0x00, 0x00, 0x00, 0xaa, 0xbb, 0xcc, 0xdd, 0x01, 0x02}
	for _, method := range []pghive.Method{pghive.ELSH, pghive.MinHash} {
		for _, intern := range []bool{true, false} {
			opts := pghive.Options{Seed: 7, Method: method, DisableShapeInterning: !intern}
			t.Run(fmt.Sprintf("%v/intern=%v", method, intern), func(t *testing.T) {
				fx := newDurableFixture(t, opts)
				ref := fx.referenceImages(t)

				dir := t.TempDir()
				// Small segments force rotation, so crash points span
				// multiple files.
				dopts := pghive.DurableOptions{NoSync: true, DisableAutoCompact: true, SegmentBytes: 32 << 10}
				fx.runDurable(t, dir, dopts, -1)

				segs := walSegments(t, dir)
				if len(segs) < 2 {
					t.Fatalf("want multiple WAL segments for multi-file crash points, got %d", len(segs))
				}
				points := crashPoints(t, segs)
				if len(points) != len(ref) {
					t.Fatalf("%d crash points but %d reference states", len(points), len(ref))
				}

				for _, p := range points {
					for variant, tail := range map[string][]byte{"clean": nil, "torn": torn} {
						crashDir := buildCrashDir(t, dir, segs, p, tail)
						rec, err := pghive.OpenDurable(crashDir, opts, dopts)
						if err != nil {
							t.Fatalf("recover at %d records (%s): %v", p.records, variant, err)
						}
						img := serviceImage(t, rec)
						rec.Close()
						if !bytes.Equal(img, ref[p.records]) {
							t.Fatalf("recovery at %d records (%s) diverges from uninterrupted run", p.records, variant)
						}
					}
				}
			})
		}
	}
}

// TestDurableCompactionRoundTrip covers the checkpoint+tail recovery
// path: compaction mid-script folds the log into an image and prunes
// the superseded segments, crash images taken around it still recover
// bit-identically, and the service keeps accepting writes afterwards.
func TestDurableCompactionRoundTrip(t *testing.T) {
	opts := pghive.Options{Seed: 7}
	fx := newDurableFixture(t, opts)
	ref := fx.referenceImages(t)

	dir := t.TempDir()
	dopts := pghive.DurableOptions{NoSync: true, DisableAutoCompact: true, SegmentBytes: 16 << 10}
	// Compact right after the retraction (mutation index 4 = 5 records
	// in the log).
	fx.runDurable(t, dir, dopts, 4)

	// The image file exists, named for the LSN it covers, and every
	// sealed segment at or below it is gone.
	cks, err := filepath.Glob(filepath.Join(dir, "checkpoint-*.ckpt"))
	if err != nil || len(cks) != 1 {
		t.Fatalf("checkpoints after compaction: %v (err %v), want exactly 1", cks, err)
	}
	want := filepath.Join(dir, fmt.Sprintf("checkpoint-%020d.ckpt", 5))
	if cks[0] != want {
		t.Fatalf("checkpoint file %s, want %s", cks[0], want)
	}
	for _, seg := range walSegments(t, dir) {
		ends, err := wal.RecordEnds(nil, seg)
		if err != nil {
			t.Fatal(err)
		}
		if len(ends) == 0 {
			continue
		}
		var lsns []uint64
		f, err := os.Open(seg)
		if err != nil {
			t.Fatal(err)
		}
		wal.ScanSegment(f, func(r wal.Record) error { lsns = append(lsns, r.LSN); return nil })
		f.Close()
		for _, l := range lsns {
			if l <= 5 {
				t.Fatalf("segment %s still holds folded record %d", seg, l)
			}
		}
	}

	// Recovery from checkpoint + replayed tail equals the
	// uninterrupted run...
	rec, err := pghive.OpenDurable(dir, opts, dopts)
	if err != nil {
		t.Fatal(err)
	}
	if got := serviceImage(t, rec); !bytes.Equal(got, ref[len(ref)-1]) {
		t.Fatal("state after compaction + reopen diverges from uninterrupted run")
	}
	if got := rec.CheckpointLSN(); got != 5 {
		t.Fatalf("CheckpointLSN after reopen = %d, want 5", got)
	}

	// ...and the reopened service keeps serving writes durably: the
	// retracted batch's IDs are free again, so re-ingesting it is a
	// legal new mutation mirrored on the reference.
	refSvc := pghive.NewService(opts)
	replayReference(t, refSvc, fx)
	if _, err := rec.Ingest(fx.retract); err != nil {
		t.Fatal(err)
	}
	refSvc.Ingest(fx.retract)
	liveImg := serviceImage(t, rec)
	if !bytes.Equal(liveImg, serviceImage(t, refSvc)) {
		t.Fatal("post-recovery write diverges from reference")
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	// A second compaction cycle after reopen also recovers.
	rec2, err := pghive.OpenDurable(dir, opts, dopts)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec2.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := serviceImage(t, rec2); !bytes.Equal(got, liveImg) {
		t.Fatal("compaction changed the served state")
	}
	rec2.Close()
}

// replayReference applies the whole fixture script to a plain service.
func replayReference(t *testing.T, svc *pghive.Service, fx *durableFixture) {
	t.Helper()
	for _, g := range fx.ingests {
		svc.Ingest(g)
	}
	svc.Retract(fx.retract)
	if err := svc.DrainStream(pghive.NewJSONLStream(bytes.NewReader(fx.streamData), fx.streamBS), nil); err != nil {
		t.Fatal(err)
	}
}

// stressGraph builds a small explicit-ID graph so concurrent writers
// can ingest disjoint namespaces.
func stressGraph(t testing.TB, base pghive.ID, n int) *pghive.Graph {
	g := pghive.NewGraph()
	for i := 0; i < n; i++ {
		id := base + pghive.ID(i)
		if err := g.PutNode(id, []string{"Stress"}, map[string]pghive.Value{
			"k": pghive.Int(int64(i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		src := base + pghive.ID(i)
		dst := base + pghive.ID((i+1)%n)
		if err := g.PutEdge(base+pghive.ID(i), []string{"NEXT"}, src, dst, nil); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// TestDurableServiceConcurrentStress runs writers, lock-free readers,
// and an aggressive background compactor together under the race
// detector, then proves the WAL-ordered history recovers to exactly
// the live final state.
func TestDurableServiceConcurrentStress(t *testing.T) {
	opts := pghive.Options{Seed: 3, Parallelism: 1}
	dir := t.TempDir()
	d, err := pghive.OpenDurable(dir, opts, pghive.DurableOptions{
		NoSync:          true,
		SegmentBytes:    2 << 10,
		CompactInterval: 2 * time.Millisecond,
		OnCompactError:  func(err error) { t.Errorf("background compaction: %v", err) },
	})
	if err != nil {
		t.Fatal(err)
	}

	const writers, iters, span = 3, 12, 10
	var writerWG, readerWG sync.WaitGroup
	writersDone := make(chan struct{})
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < iters; i++ {
				base := pghive.ID(1_000_000*w + 1_000*i)
				g := stressGraph(t, base, span)
				if _, err := d.Ingest(g); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				if i%3 == 2 {
					if _, err := d.Retract(g); err != nil {
						t.Errorf("writer %d retract: %v", w, err)
						return
					}
				}
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for {
				select {
				case <-writersDone:
					return
				default:
				}
				snap := d.Snapshot()
				if snap.Stats.NodeTypes != len(snap.Schema.NodeTypes) {
					t.Error("snapshot stats disagree with snapshot schema")
					return
				}
			}
		}()
	}
	writerWG.Wait()
	close(writersDone)
	readerWG.Wait()

	liveImg := serviceImage(t, d)
	liveStats := d.Stats()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := pghive.OpenDurable(dir, opts, pghive.DurableOptions{NoSync: true, DisableAutoCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if got := serviceImage(t, rec); !bytes.Equal(got, liveImg) {
		t.Fatal("recovered state diverges from the live service's final state")
	}
	if got := rec.Stats(); got.Batches != liveStats.Batches || got.Nodes != liveStats.Nodes || got.Edges != liveStats.Edges {
		t.Fatalf("recovered stats %+v, live %+v", got, liveStats)
	}
}

// TestOpenDurableRejectsCorruptCheckpoint: a checkpoint that cannot
// be parsed is a hard error (atomic writes mean no crash produces
// one), never a silent empty restart.
func TestOpenDurableRejectsCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, fmt.Sprintf("checkpoint-%020d.ckpt", 3))
	if err := os.WriteFile(path, []byte("{not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := pghive.OpenDurable(dir, pghive.Options{Seed: 1}, pghive.DurableOptions{NoSync: true, DisableAutoCompact: true}); err == nil {
		t.Fatal("OpenDurable accepted a corrupt checkpoint")
	}
}

// TestOpenDurableRejectsUnknownRecordType: a WAL record whose type
// the replayer does not know must fail recovery loudly.
func TestOpenDurableRejectsUnknownRecordType(t *testing.T) {
	dir := t.TempDir()
	l, err := wal.Open(filepath.Join(dir, "wal"), wal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(99, []byte(`{"kind":"node","id":1}`+"\n")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := pghive.OpenDurable(dir, pghive.Options{Seed: 1}, pghive.DurableOptions{NoSync: true, DisableAutoCompact: true}); err == nil {
		t.Fatal("OpenDurable accepted an unknown WAL record type")
	}
}
