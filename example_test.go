package pghive_test

import (
	"fmt"

	pghive "github.com/pghive/pghive"
)

// ExampleDiscover demonstrates end-to-end schema discovery on a tiny
// graph: two node types, one edge type, an unlabeled node merged by
// structural similarity.
func ExampleDiscover() {
	g := pghive.NewGraph()
	ann := g.AddNode([]string{"Person"}, map[string]pghive.Value{
		"name": pghive.Str("Ann"),
		"bday": pghive.ParseLexical("1990-04-01"),
	})
	// Unlabeled, but structurally a Person.
	g.AddNode(nil, map[string]pghive.Value{
		"name": pghive.Str("Ben"),
		"bday": pghive.ParseLexical("1988-11-23"),
	})
	post := g.AddNode([]string{"Post"}, map[string]pghive.Value{
		"content": pghive.Str("hello world"),
	})
	if _, err := g.AddEdge([]string{"LIKES"}, ann, post, nil); err != nil {
		panic(err)
	}

	res := pghive.Discover(g, pghive.Options{Seed: 1})
	fmt.Print(pghive.PGSchema(res.Schema, pghive.Strict, "Tiny"))
	// Output:
	// CREATE GRAPH TYPE Tiny STRICT {
	//   (personType : Person { bday DATE, name STRING }),
	//   (postType : Post { content STRING }),
	//   (: personType)-[likesType : LIKES]->(: postType) /* cardinality 1:1 */
	// }
}

// ExampleValidate shows conformance checking against a discovered
// schema.
func ExampleValidate() {
	g := pghive.NewGraph()
	for i := 0; i < 5; i++ {
		g.AddNode([]string{"City"}, map[string]pghive.Value{
			"name": pghive.Str(fmt.Sprintf("city-%d", i)),
			"pop":  pghive.Int(int64(1000 * (i + 1))),
		})
	}
	res := pghive.Discover(g, pghive.Options{Seed: 1})

	// A city missing its mandatory population violates STRICT mode.
	g.AddNode([]string{"City"}, map[string]pghive.Value{"name": pghive.Str("ghost town")})
	report := pghive.Validate(g, res.Schema, pghive.ValidateStrict)
	fmt.Println(report.Violations[0])
	// Output:
	// node 5: mandatory: mandatory property "pop" of type City missing
}

// ExampleComputeStats reports Table 2-style statistics of a graph.
func ExampleComputeStats() {
	g := pghive.NewGraph()
	a := g.AddNode([]string{"A"}, map[string]pghive.Value{"x": pghive.Int(1)})
	b := g.AddNode([]string{"B"}, nil)
	if _, err := g.AddEdge([]string{"R"}, a, b, nil); err != nil {
		panic(err)
	}
	s := pghive.ComputeStats(g)
	fmt.Printf("nodes=%d edges=%d nodeLabels=%d nodePatterns=%d\n",
		s.Nodes, s.Edges, s.NodeLabels, s.NodePatterns)
	// Output:
	// nodes=2 edges=1 nodeLabels=2 nodePatterns=2
}
