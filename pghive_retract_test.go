package pghive_test

import (
	"testing"

	pghive "github.com/pghive/pghive"
)

func TestPublicAPIRetraction(t *testing.T) {
	g := buildFigure1(t)
	inc := pghive.NewIncremental(pghive.Options{Seed: 1})
	b := &pghive.Batch{Graph: g, Resolver: g, Index: 1}
	inc.ProcessBatch(b)
	if len(inc.Schema().NodeTypes) == 0 {
		t.Fatal("setup failed")
	}
	// Delete everything: schema must become empty.
	inc.RetractBatch(b)
	res := inc.Finalize()
	if len(res.Schema.NodeTypes) != 0 || len(res.Schema.EdgeTypes) != 0 {
		t.Errorf("schema after full retraction: %d node types, %d edge types",
			len(res.Schema.NodeTypes), len(res.Schema.EdgeTypes))
	}
	if len(res.NodeAssign) != 0 {
		t.Errorf("assignments must be cleared, have %d", len(res.NodeAssign))
	}
}
