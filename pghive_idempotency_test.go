package pghive_test

// Exactly-once retry semantics. The scenario every test here circles:
// a client's /ingest is applied and WAL-logged, but the crash (or a
// dropped connection) eats the acknowledgment — so the client retries.
// Without idempotency keys the retry double-applies; with them the
// server recognizes the key (recovered from the WAL or checkpoint,
// not just process memory) and answers "replayed" without touching
// state. The first test is the regression pinning the BUG — an
// unkeyed retry double-applies — so the contract the keyed tests
// prove is visibly load-bearing, not vacuously true.

import (
	"context"
	"testing"

	pghive "github.com/pghive/pghive"
	"github.com/pghive/pghive/internal/vfs"
)

// counts compresses the stats a double-apply damages. Client-assigned
// node/edge IDs make a same-batch re-apply overwrite itself, but the
// batch count — the thing histcheck's conservation oracle audits
// against the script — double-counts, and any batch whose IDs are
// minted per request (the common append pattern) duplicates outright.
type counts struct{ Batches, Nodes, Edges int }

func countsOf(st pghive.ServiceStats) counts {
	return counts{Batches: st.Batches, Nodes: st.Nodes, Edges: st.Edges}
}

func openIdemService(t *testing.T, mem *vfs.MemFS, keyCap int) *pghive.DurableService {
	t.Helper()
	d, err := pghive.OpenDurable("data", pghive.Options{Seed: 3, Parallelism: 1},
		pghive.DurableOptions{FS: mem, DisableAutoCompact: true, MaxIdempotencyKeys: keyCap})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestUnkeyedRetryDoubleAppliesAfterCrash documents the failure mode
// idempotency keys exist to fix: the write was durable, the ack was
// lost, and the blind unkeyed retry doubles the batch.
func TestUnkeyedRetryDoubleAppliesAfterCrash(t *testing.T) {
	mem := vfs.NewMemFS()
	d := openIdemService(t, mem, 0)
	g := stressGraph(t, 0, 5)
	if _, err := d.Ingest(g); err != nil {
		t.Fatal(err)
	}
	before := countsOf(d.Stats())

	mem.Crash() // the ack never reached the client
	d2 := openIdemService(t, mem, 0)
	defer d2.Close()
	if got := countsOf(d2.Stats()); got != before {
		t.Fatalf("recovery lost state: %+v, want %+v", got, before)
	}
	if _, err := d2.Ingest(g); err != nil { // the client's blind retry
		t.Fatal(err)
	}
	got := countsOf(d2.Stats())
	if got.Batches != 2*before.Batches {
		t.Fatalf("expected the unkeyed retry to double-apply the batch (%d batches), got %+v — if this fails, the regression scenario no longer reproduces and the keyed tests prove nothing", 2*before.Batches, got)
	}
}

// TestKeyedRetryAppliesExactlyOnceAcrossCrash is the fix: the key
// rides inside the WAL record, so recovery rebuilds the applied-key
// set and the retry is recognized.
func TestKeyedRetryAppliesExactlyOnceAcrossCrash(t *testing.T) {
	mem := vfs.NewMemFS()
	d := openIdemService(t, mem, 0)
	g := stressGraph(t, 0, 5)
	const key = "req-42"
	_, replayed, err := d.IngestIdempotent(context.Background(), key, g)
	if err != nil {
		t.Fatal(err)
	}
	if replayed {
		t.Fatal("first keyed write reported replayed")
	}
	want := countsOf(d.Stats())

	// Same-process retry first (the ack was lost to the network, not a
	// crash).
	if _, replayed, err = d.IngestIdempotent(context.Background(), key, g); err != nil || !replayed {
		t.Fatalf("in-process retry: replayed=%v err=%v, want true/nil", replayed, err)
	}

	mem.Crash()
	d2 := openIdemService(t, mem, 0)
	defer d2.Close()
	if _, replayed, err = d2.IngestIdempotent(context.Background(), key, g); err != nil {
		t.Fatal(err)
	} else if !replayed {
		t.Fatal("post-crash retry of an applied key was not recognized")
	}
	if got := countsOf(d2.Stats()); got != want {
		t.Fatalf("post-crash retry changed state: %+v, want %+v", got, want)
	}

	// A fresh key still applies normally.
	if _, replayed, err = d2.IngestIdempotent(context.Background(), "req-43", stressGraph(t, 1000, 5)); err != nil || replayed {
		t.Fatalf("fresh key: replayed=%v err=%v, want false/nil", replayed, err)
	}
	if got := countsOf(d2.Stats()); got.Batches != want.Batches+1 {
		t.Fatalf("fresh keyed write did not apply: %+v", got)
	}
}

// TestKeysSurviveCompaction: compaction folds the WAL away, so the
// keys must travel into the checkpoint image or a post-compaction
// crash would forget them.
func TestKeysSurviveCompaction(t *testing.T) {
	mem := vfs.NewMemFS()
	d := openIdemService(t, mem, 0)
	g := stressGraph(t, 0, 5)
	if _, _, err := d.IngestIdempotent(context.Background(), "k1", g); err != nil {
		t.Fatal(err)
	}
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	want := countsOf(d.Stats())

	mem.Crash()
	d2 := openIdemService(t, mem, 0)
	defer d2.Close()
	_, replayed, err := d2.IngestIdempotent(context.Background(), "k1", g)
	if err != nil {
		t.Fatal(err)
	}
	if !replayed {
		t.Fatal("key folded into the checkpoint was forgotten after compaction + crash")
	}
	if got := countsOf(d2.Stats()); got != want {
		t.Fatalf("replayed retry changed state: %+v, want %+v", got, want)
	}
}

// TestKeyRetentionIsBounded: the store forgets oldest-first past the
// cap — the documented trade a retry older than the window makes.
func TestKeyRetentionIsBounded(t *testing.T) {
	mem := vfs.NewMemFS()
	d := openIdemService(t, mem, 2)
	defer d.Close()
	for i, key := range []string{"a", "b", "c"} {
		if _, _, err := d.IngestIdempotent(context.Background(), key, stressGraph(t, pghive.ID(i*1000), 5)); err != nil {
			t.Fatal(err)
		}
	}
	if st := d.DurableStats(); st.IdempotencyKeys != 2 {
		t.Fatalf("retained %d keys, want 2", st.IdempotencyKeys)
	}
	// "a" was evicted: its retry re-applies (and says so).
	_, replayed, err := d.IngestIdempotent(context.Background(), "a", stressGraph(t, 0, 5))
	if err != nil {
		t.Fatal(err)
	}
	if replayed {
		t.Fatal("evicted key still reported replayed")
	}
	// "c" is retained.
	if _, replayed, _ = d.IngestIdempotent(context.Background(), "c", stressGraph(t, 2000, 5)); !replayed {
		t.Fatal("retained key not recognized")
	}
}

// TestKeyedRetractExactlyOnce: retraction honors the same contract.
func TestKeyedRetractExactlyOnce(t *testing.T) {
	mem := vfs.NewMemFS()
	d := openIdemService(t, mem, 0)
	g := stressGraph(t, 0, 5)
	if _, err := d.Ingest(g); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.RetractIdempotent(context.Background(), "r1", g); err != nil {
		t.Fatal(err)
	}
	want := countsOf(d.Stats())

	mem.Crash()
	d2 := openIdemService(t, mem, 0)
	defer d2.Close()
	_, replayed, err := d2.RetractIdempotent(context.Background(), "r1", g)
	if err != nil || !replayed {
		t.Fatalf("retract retry: replayed=%v err=%v, want true/nil", replayed, err)
	}
	if got := countsOf(d2.Stats()); got != want {
		t.Fatalf("replayed retract changed state: %+v, want %+v", got, want)
	}
}
